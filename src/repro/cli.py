"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``route`` — route one benchmark circuit with the stitch-aware
  framework (or the baseline), print the violation report, optionally
  write the SVG plot, the JSON report, and the design snapshot.
* ``compare`` — run both routers on one circuit and print the
  Table III style comparison row.
* ``circuits`` — list the available benchmark circuits.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .benchmarks_gen import (
    FARADAY_NAMES,
    MCNC_NAMES,
    faraday_design,
    mcnc_design,
)
from .core import BaselineRouter, StitchAwareRouter
from .io import save_design, save_report
from .reporting import format_table
from .viz import render_routing_svg


def _get_design(name: str, scale: float):
    if name in MCNC_NAMES:
        return mcnc_design(name, scale)
    if name in FARADAY_NAMES:
        return faraday_design(name, scale)
    raise SystemExit(
        f"unknown circuit {name!r}; run `python -m repro circuits`"
    )


def _cmd_circuits(_args: argparse.Namespace) -> int:
    print("MCNC   :", ", ".join(MCNC_NAMES))
    print("Faraday:", ", ".join(FARADAY_NAMES))
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    design = _get_design(args.circuit, args.scale)
    router = BaselineRouter() if args.baseline else StitchAwareRouter()
    flow = router.route(design)
    report = flow.report
    print(
        format_table(
            [report.row()],
            title=f"{design.name} @ scale {args.scale} "
            f"({'baseline' if args.baseline else 'stitch-aware'})",
        )
    )
    if args.svg:
        with open(args.svg, "w") as f:
            f.write(render_routing_svg(flow.detailed_result))
        print(f"wrote {args.svg}")
    if args.report:
        save_report(report, args.report)
        print(f"wrote {args.report}")
    if args.save_design:
        save_design(design, args.save_design)
        print(f"wrote {args.save_design}")
    if args.profile:
        assert flow.trace is not None
        flow.trace.save(args.profile)
        print(f"wrote {args.profile}")
        for stage, seconds in flow.trace.stage_wall_seconds().items():
            print(f"  {stage:<12s} {seconds:8.3f} s")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    design = _get_design(args.circuit, args.scale)
    rows = []
    for label, router in (
        ("baseline", BaselineRouter()),
        ("stitch-aware", StitchAwareRouter()),
    ):
        flow = router.route(design)
        report = flow.report
        row = report.row()
        row["circuit"] = f"{design.name} ({label})"
        rows.append(row)
        if args.profile:
            assert flow.trace is not None
            path = f"{args.profile}_{label}.json"
            flow.trace.save(path)
            print(f"wrote {path}")
    print(format_table(rows, title=f"{design.name} @ scale {args.scale}"))
    base_sp, aware_sp = rows[0]["sp"], rows[1]["sp"]
    if base_sp:
        print(f"\nshort polygons reduced to "
              f"{100 * aware_sp / base_sp:.1f}% of baseline")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stitch-aware routing for MEBL (DAC'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    circuits = sub.add_parser("circuits", help="list benchmark circuits")
    circuits.set_defaults(func=_cmd_circuits)

    route = sub.add_parser("route", help="route one circuit")
    route.add_argument("circuit")
    route.add_argument("--scale", type=float, default=0.05)
    route.add_argument("--baseline", action="store_true")
    route.add_argument("--svg", help="write the routing plot")
    route.add_argument("--report", help="write the JSON violation report")
    route.add_argument("--save-design", help="write the design snapshot")
    route.add_argument(
        "--profile",
        nargs="?",
        const="trace.json",
        metavar="JSON",
        help="write the per-stage trace (default: trace.json)",
    )
    route.set_defaults(func=_cmd_route)

    compare = sub.add_parser("compare", help="baseline vs stitch-aware")
    compare.add_argument("circuit")
    compare.add_argument("--scale", type=float, default=0.05)
    compare.add_argument(
        "--profile",
        nargs="?",
        const="trace",
        metavar="PREFIX",
        help="write one trace per router as PREFIX_<label>.json "
        "(default prefix: trace)",
    )
    compare.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (also used by ``python -m repro``)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
