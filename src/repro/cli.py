"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``route`` — route one benchmark circuit with the stitch-aware
  framework (or the baseline), print the violation report, optionally
  write the SVG plot, the JSON report, and the design snapshot.
* ``compare`` — run both routers on one circuit and print the
  Table III style comparison row.
* ``diag`` — route one circuit and print the per-stitch-line
  violation histogram (which line causes which #VV/#SP).
* ``trace show|diff|top`` — summarize, compare, or hotspot-rank saved
  trace JSONs (``--profile`` dumps, report files, BENCH documents, or
  ``.ndjson`` / ``.ndjson.gz`` event streams; ``.json.gz`` works too).
* ``watch`` — tail a live ``--stream`` NDJSON file: per-stage
  progress, nets/s and expansions/s rates, heartbeat gauges, hotspot
  deltas, and the final hotspot ranking when the run finishes.
* ``perf-history`` — roll the committed ``BENCH_*.json`` /
  ``SPEEDUP_ENGINE_*.json`` / ``SPEEDUP_*.json`` artifacts into one
  perf-trajectory report.
* ``lint`` — run the determinism linter (rules DET001–DET005, see
  ``docs/static_analysis.md``) over source paths; exits nonzero on
  findings not grandfathered by the committed baseline.
  ``--select`` / ``--ignore`` restrict the active rule set.
* ``races`` — run the static concurrency-effect analyzer (rules
  CONC001–CONC006, see ``docs/static_analysis.md``) over source
  paths; exits nonzero on findings not grandfathered by the committed
  ``races-baseline.json``.
* ``audit`` — route one circuit and run the independent solution
  auditor (rules AUD001–AUD007) over the result: every stitching
  constraint is re-derived from the raw geometry and the report's
  counters are cross-checked; exits 1 on any finding or counter
  drift.
* ``circuits`` — list the available benchmark circuits.

``route``, ``compare``, and ``diag`` accept ``--sanitize`` to route
with the speculation-footprint sanitizer enabled, and ``--perf`` to
enable the engine profiling counters (``counters``) or full live
progress events (``full``); ``route --stream FILE`` streams the run's
events to an NDJSON file that ``repro watch FILE`` can tail.

``-v`` / ``-vv`` (before the command) stream live span/round progress
from the run through the :mod:`repro.observe.log` bridge.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Optional

from .benchmarks_gen import (
    FARADAY_NAMES,
    MCNC_NAMES,
    faraday_design,
    mcnc_design,
)
from .config import RouterConfig
from .api import BaselineRouter, StitchAwareRouter
from .eval import RoutingReport
from .io import save_design, save_report
from .observe import schema as observe_schema
from .observe import (
    DiffThresholds,
    LoggingTracer,
    StreamingTracer,
    TraceSummary,
    Tracer,
    collect_perf_history,
    configure_logging,
    diff_traces,
    hotspots,
    load_trace_file,
    render_diff,
    render_hotspots,
    render_perf_history,
    render_summary,
)
from .reporting import format_table
from .viz import render_routing_svg


def _get_design(name: str, scale: float):
    if name in MCNC_NAMES:
        return mcnc_design(name, scale)
    if name in FARADAY_NAMES:
        return faraday_design(name, scale)
    raise SystemExit(
        f"unknown circuit {name!r}; run `python -m repro circuits`"
    )


def _make_tracer(args: argparse.Namespace) -> Optional[Tracer]:
    """The tracer a run subcommand should route with.

    ``--stream FILE`` wins (live NDJSON events for ``repro watch``),
    then ``-v`` (logging bridge), else let the flow decide.
    """
    stream = getattr(args, "stream", None)
    if stream:
        return StreamingTracer(stream)
    return LoggingTracer() if args.verbose else None


def _profile_path(prefix: str, label: str) -> str:
    """Per-router trace path: splice ``label`` before the extension.

    ``foo.json`` + ``baseline`` -> ``foo_baseline.json`` (not the
    mangled ``foo.json_baseline.json``); an extension-less prefix gets
    ``.json`` appended.
    """
    path = pathlib.Path(prefix)
    suffix = path.suffix if path.suffix == ".json" else ""
    stem = path.name[: len(path.name) - len(suffix)] if suffix else path.name
    return str(path.with_name(f"{stem}_{label}{suffix or '.json'}"))


def _cmd_circuits(_args: argparse.Namespace) -> int:
    print("MCNC   :", ", ".join(MCNC_NAMES))
    print("Faraday:", ", ".join(FARADAY_NAMES))
    return 0


def _run_config(args: argparse.Namespace) -> RouterConfig:
    """The flow config for a run subcommand."""
    return RouterConfig(
        workers=args.workers,
        sanitize=getattr(args, "sanitize", False),
        engine=getattr(args, "engine", "auto"),
        profile=getattr(args, "perf", "off"),
        executor=getattr(args, "executor", "auto"),
    )


def _cmd_route(args: argparse.Namespace) -> int:
    design = _get_design(args.circuit, args.scale)
    config = _run_config(args)
    router = (
        BaselineRouter(config=config)
        if args.baseline
        else StitchAwareRouter(config=config)
    )
    flow = router.route(design, tracer=_make_tracer(args))
    report = flow.report
    print(
        format_table(
            [report.row()],
            title=f"{design.name} @ scale {args.scale} "
            f"({'baseline' if args.baseline else 'stitch-aware'})",
        )
    )
    if args.svg:
        with open(args.svg, "w") as f:
            f.write(render_routing_svg(flow.detailed_result))
        print(f"wrote {args.svg}")
    if args.report:
        save_report(report, args.report)
        print(f"wrote {args.report}")
    if args.save_design:
        save_design(design, args.save_design)
        print(f"wrote {args.save_design}")
    if args.profile:
        assert flow.trace is not None
        flow.trace.save(args.profile)
        print(f"wrote {args.profile}")
        for stage, seconds in flow.trace.stage_wall_seconds().items():
            print(f"  {stage:<12s} {seconds:8.3f} s")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    design = _get_design(args.circuit, args.scale)
    config = _run_config(args)
    rows = []
    for label, router in (
        ("baseline", BaselineRouter(config=config)),
        ("stitch-aware", StitchAwareRouter(config=config)),
    ):
        flow = router.route(design, tracer=_make_tracer(args))
        report = flow.report
        row = report.row()
        row["circuit"] = f"{design.name} ({label})"
        rows.append(row)
        if args.profile:
            assert flow.trace is not None
            path = _profile_path(args.profile, label)
            flow.trace.save(path)
            print(f"wrote {path}")
    print(format_table(rows, title=f"{design.name} @ scale {args.scale}"))
    base_sp, aware_sp = rows[0]["sp"], rows[1]["sp"]
    if base_sp:
        print(f"\nshort polygons reduced to "
              f"{100 * aware_sp / base_sp:.1f}% of baseline")
    return 0


def _histogram_rows(report: RoutingReport) -> list[dict]:
    """Per-stitch-line table rows (line index, x, per-kind counts)."""
    line_x = {v.line: v.x for v in report.violations}
    rows = []
    for line, kinds in report.stitch_line_histogram().items():
        rows.append(
            {
                "line": line,
                "x": line_x[line],
                "vv": kinds["via"],
                "vertical": kinds["vertical"],
                "sp": kinds["short-polygon"],
                "total": sum(kinds.values()),
            }
        )
    return rows


def _cmd_diag(args: argparse.Namespace) -> int:
    design = _get_design(args.circuit, args.scale)
    config = _run_config(args)
    router = (
        BaselineRouter(config=config)
        if args.baseline
        else StitchAwareRouter(config=config)
    )
    flow = router.route(design, tracer=_make_tracer(args))
    report = flow.report
    print(
        format_table(
            [report.row()],
            title=f"{design.name} @ scale {args.scale} "
            f"({'baseline' if args.baseline else 'stitch-aware'})",
        )
    )
    print()
    rows = _histogram_rows(report)
    if rows:
        print(
            format_table(
                rows,
                columns=["line", "x", "vv", "vertical", "sp", "total"],
                title="violations per stitching line "
                f"({len(design.stitches)} lines total)",
            )
        )
    else:
        print("no stitch violations — every line is clean")
    worst = sorted(rows, key=lambda r: r["total"], reverse=True)[:3]
    for row in worst:
        offenders = sorted(
            {v.net for v in report.violations if v.line == row["line"]}
        )
        shown = ", ".join(offenders[:6])
        more = f" (+{len(offenders) - 6} more)" if len(offenders) > 6 else ""
        print(f"line {row['line']} (x={row['x']}): nets {shown}{more}")
    if args.report:
        save_report(report, args.report)
        print(f"wrote {args.report}")
    return 0


def _cmd_trace_show(args: argparse.Namespace) -> int:
    trace = load_trace_file(args.trace, key=args.key)
    fmt = "markdown" if args.markdown else "plain"
    print(render_summary(TraceSummary.from_trace(trace), fmt=fmt))
    unregistered = sorted(
        name
        for name in trace.aggregate_counters()
        if not observe_schema.is_registered("counter", name)
    )
    if unregistered:
        print(
            "warning: counters missing from repro.observe.schema: "
            + ", ".join(unregistered)
        )
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    old = load_trace_file(args.old, key=args.key_old or args.key)
    new = load_trace_file(args.new, key=args.key_new or args.key)
    thresholds = DiffThresholds(
        wall_pct=args.wall_tolerance,
        min_wall_seconds=args.min_wall,
        include_wall=not args.no_wall,
    )
    diff = diff_traces(old, new, thresholds)
    fmt = "markdown" if args.markdown else "plain"
    print(render_diff(diff, fmt=fmt))
    if not diff.ok:
        print()
        print("REGRESSIONS:")
        for line in diff.regressions():
            print(f"  {line}")
        return 1
    return 0


def _rule_codes(raw: Optional[str]) -> Optional[list[str]]:
    """Parse a comma-separated ``--select`` / ``--ignore`` value."""
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def _update_baseline(
    baseline_path: pathlib.Path,
    findings: list,
    *,
    format: str,
) -> int:
    """Rewrite ``baseline_path`` from ``findings``, reporting the churn.

    Stale fingerprints (grandfathered findings that no longer exist)
    are pruned; brand-new findings are added.  Both counts are printed
    so a baseline refresh is reviewable at a glance.
    """
    from .analysis import Baseline, save_baseline

    old: frozenset = frozenset()
    if baseline_path.exists():
        old = Baseline.load(baseline_path, format=format).fingerprints
    new = {finding.fingerprint for finding in findings}
    count = save_baseline(baseline_path, findings, format=format)
    print(
        f"wrote {baseline_path} ({count} grandfathered finding(s), "
        f"{len(new - old)} added, {len(old - new)} pruned)"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported here: the linter pulls in the analysis package, which
    # routing commands never need.
    from .analysis import (
        DEFAULT_BASELINE_NAME,
        Baseline,
        lint_paths,
        render_findings,
    )
    from .analysis.baseline import BASELINE_FORMAT

    paths = args.paths or ["src"]
    select = _rule_codes(args.select)
    ignore = _rule_codes(args.ignore)
    baseline_path = pathlib.Path(args.baseline or DEFAULT_BASELINE_NAME)
    try:
        if args.update_baseline:
            report = lint_paths(paths, select=select, ignore=ignore)
            status = _update_baseline(
                baseline_path,
                report.findings,
                format=BASELINE_FORMAT,
            )
            for line in _dead_suppression_warnings(report):
                print(line, file=sys.stderr)
            return status
        fingerprints: frozenset = frozenset()
        if baseline_path.exists():
            fingerprints = Baseline.load(baseline_path).fingerprints
        report = lint_paths(
            paths,
            baseline_fingerprints=fingerprints,
            select=select,
            ignore=ignore,
        )
    except ValueError as error:  # unknown rule codes -> usage error
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        document = {
            "findings": [f.to_dict() for f in report.findings],
            "grandfathered": [f.to_dict() for f in report.grandfathered],
            "suppressed": report.suppressed,
            "dead_suppressions": [
                d.to_dict() for d in report.dead_suppressions
            ],
            "files": report.files,
            "ok": report.ok,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_findings(report))
    return 0 if report.ok else 1


def _dead_suppression_warnings(report) -> list:
    from .analysis.findings import dead_suppression_lines

    return dead_suppression_lines(report.dead_suppressions)


def _cmd_races(args: argparse.Namespace) -> int:
    # Imported here for the same reason as the linter.
    from .analysis import (
        Baseline,
        analyze_paths,
        render_races,
    )
    from .analysis.baseline import (
        DEFAULT_RACES_BASELINE_NAME,
        RACES_BASELINE_FORMAT,
    )

    paths = args.paths or ["src"]
    select = _rule_codes(args.select)
    ignore = _rule_codes(args.ignore)
    baseline_path = pathlib.Path(
        args.baseline or DEFAULT_RACES_BASELINE_NAME
    )
    try:
        if args.update_baseline:
            report = analyze_paths(paths, select=select, ignore=ignore)
            status = _update_baseline(
                baseline_path,
                report.findings,
                format=RACES_BASELINE_FORMAT,
            )
            for line in _dead_suppression_warnings(report):
                print(line, file=sys.stderr)
            return status
        fingerprints: frozenset = frozenset()
        if baseline_path.exists():
            fingerprints = Baseline.load(
                baseline_path, format=RACES_BASELINE_FORMAT
            ).fingerprints
        report = analyze_paths(
            paths,
            baseline_fingerprints=fingerprints,
            select=select,
            ignore=ignore,
        )
    except ValueError as error:  # unknown rule codes -> usage error
        print(f"repro races: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        document = {
            "findings": [f.to_dict() for f in report.findings],
            "grandfathered": [f.to_dict() for f in report.grandfathered],
            "suppressed": report.suppressed,
            "dead_suppressions": [
                d.to_dict() for d in report.dead_suppressions
            ],
            "files": report.files,
            "ok": report.ok,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_races(report))
    return 0 if report.ok else 1


def _cmd_parity(args: argparse.Namespace) -> int:
    # Imported here for the same reason as the linter.
    from .analysis import (
        Baseline,
        analyze_parity_paths,
        render_parity,
    )
    from .analysis.baseline import (
        DEFAULT_PARITY_BASELINE_NAME,
        PARITY_BASELINE_FORMAT,
    )

    paths = args.paths or ["src"]
    select = _rule_codes(args.select)
    ignore = _rule_codes(args.ignore)
    baseline_path = pathlib.Path(
        args.baseline or DEFAULT_PARITY_BASELINE_NAME
    )
    try:
        if args.update_baseline:
            report = analyze_parity_paths(
                paths, select=select, ignore=ignore
            )
            status = _update_baseline(
                baseline_path,
                report.findings,
                format=PARITY_BASELINE_FORMAT,
            )
            for line in _dead_suppression_warnings(report):
                print(line, file=sys.stderr)
            return status
        fingerprints: frozenset = frozenset()
        if baseline_path.exists():
            fingerprints = Baseline.load(
                baseline_path, format=PARITY_BASELINE_FORMAT
            ).fingerprints
        report = analyze_parity_paths(
            paths,
            baseline_fingerprints=fingerprints,
            select=select,
            ignore=ignore,
        )
    except ValueError as error:  # unknown rule codes -> usage error
        print(f"repro parity: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        document = {
            "findings": [f.to_dict() for f in report.findings],
            "grandfathered": [f.to_dict() for f in report.grandfathered],
            "suppressed": report.suppressed,
            "dead_suppressions": [
                d.to_dict() for d in report.dead_suppressions
            ],
            "files": report.files,
            "pairs": report.pairs,
            "ok": report.ok,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_parity(report))
    return 0 if report.ok else 1


def _cmd_check(args: argparse.Namespace) -> int:
    """Umbrella static gate: lint + races + parity in one run.

    Each analyzer loads its own default committed baseline, exactly as
    the standalone commands do; ``--mypy`` / ``--ruff`` additionally
    shell out to those tools when installed.  The exit code is the
    conjunction of every gate.
    """
    import importlib.util
    import subprocess

    from .analysis import (
        Baseline,
        analyze_parity_paths,
        analyze_paths,
        lint_paths,
        render_findings,
        render_parity,
        render_races,
    )
    from .analysis.baseline import (
        BASELINE_FORMAT,
        DEFAULT_BASELINE_NAME,
        DEFAULT_PARITY_BASELINE_NAME,
        DEFAULT_RACES_BASELINE_NAME,
        PARITY_BASELINE_FORMAT,
        RACES_BASELINE_FORMAT,
    )

    paths = args.paths or ["src"]

    def baseline(name: str, format: str) -> frozenset:
        path = pathlib.Path(name)
        if path.exists():
            return Baseline.load(path, format=format).fingerprints
        return frozenset()

    reports = {
        "lint": lint_paths(
            paths,
            baseline_fingerprints=baseline(
                DEFAULT_BASELINE_NAME, BASELINE_FORMAT
            ),
        ),
        "races": analyze_paths(
            paths,
            baseline_fingerprints=baseline(
                DEFAULT_RACES_BASELINE_NAME, RACES_BASELINE_FORMAT
            ),
        ),
        "parity": analyze_parity_paths(
            paths,
            baseline_fingerprints=baseline(
                DEFAULT_PARITY_BASELINE_NAME, PARITY_BASELINE_FORMAT
            ),
        ),
    }
    renderers = {
        "lint": render_findings,
        "races": render_races,
        "parity": render_parity,
    }

    external: dict[str, dict] = {}
    for tool, wanted in (("mypy", args.mypy), ("ruff", args.ruff)):
        if not wanted:
            continue
        if importlib.util.find_spec(tool) is None:
            print(
                f"repro check: --{tool} requested but {tool} is not "
                f"installed",
                file=sys.stderr,
            )
            return 2
        command = [sys.executable, "-m", tool]
        if tool == "ruff":
            command.append("check")
        command.extend(paths)
        proc = subprocess.run(command, capture_output=True, text=True)
        external[tool] = {
            "ok": proc.returncode == 0,
            "exit_code": proc.returncode,
            "output": (proc.stdout + proc.stderr).strip(),
        }

    ok = all(report.ok for report in reports.values()) and all(
        entry["ok"] for entry in external.values()
    )
    if args.format == "json":
        document: dict = {"ok": ok}
        for name, report in reports.items():
            section = {
                "findings": [f.to_dict() for f in report.findings],
                "grandfathered": [
                    f.to_dict() for f in report.grandfathered
                ],
                "suppressed": report.suppressed,
                "dead_suppressions": [
                    d.to_dict() for d in report.dead_suppressions
                ],
                "files": report.files,
                "ok": report.ok,
            }
            if name == "parity":
                section["pairs"] = report.pairs
            document[name] = section
        document.update(external)
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for name, report in reports.items():
            print(f"== {name} ==")
            print(renderers[name](report))
        for tool, entry in external.items():
            print(f"== {tool} ==")
            if entry["output"]:
                print(entry["output"])
            print(
                f"{tool}: "
                f"{'ok' if entry['ok'] else 'exit ' + str(entry['exit_code'])}"
            )
        print(f"check: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    # Imported here like the linter: analysis is a consumer layer the
    # plain routing commands never need.
    from .analysis import render_audit

    design = _get_design(args.circuit, args.scale)
    config = RouterConfig(
        workers=args.workers,
        sanitize=getattr(args, "sanitize", False),
        engine=getattr(args, "engine", "auto"),
        profile=getattr(args, "perf", "off"),
        audit=True,
    )
    router = (
        BaselineRouter(config=config)
        if args.baseline
        else StitchAwareRouter(config=config)
    )
    flow = router.route(design, tracer=_make_tracer(args))
    audit = flow.audit
    assert audit is not None  # guaranteed by config.audit=True
    if args.format == "json":
        print(json.dumps(audit.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_audit(audit))
    if args.report:
        save_report(flow.report, args.report)
        print(f"wrote {args.report}", file=sys.stderr)
    return 0 if audit.ok else 1


def _cmd_trace_top(args: argparse.Namespace) -> int:
    trace = load_trace_file(args.trace, key=args.key)
    fmt = "markdown" if args.markdown else "plain"
    print(render_hotspots(hotspots(trace, n=args.n), fmt=fmt))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    # Imported here: the watcher is a pure observer the routing
    # commands never need (and it pulls in polling machinery).
    from .observe.watch import watch_stream

    try:
        return watch_stream(
            args.stream,
            follow=not args.no_follow,
            poll_interval=args.interval,
            timeout=args.timeout,
        )
    except FileNotFoundError:
        print(f"repro watch: no such stream: {args.stream}", file=sys.stderr)
        return 2
    except (ValueError, TimeoutError) as error:
        print(f"repro watch: {error}", file=sys.stderr)
        return 2


def _cmd_perf_history(args: argparse.Namespace) -> int:
    history = collect_perf_history(args.dir)
    fmt = "markdown" if args.markdown else "plain"
    print(render_perf_history(history, fmt=fmt))
    return 0 if not history.empty else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stitch-aware routing for MEBL (DAC'13 reproduction)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="stream run progress (-v: stages and rounds, -vv: all spans)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    circuits = sub.add_parser("circuits", help="list benchmark circuits")
    circuits.set_defaults(func=_cmd_circuits)

    def _workers_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="routing worker threads (1 = serial; N > 1 routes "
            "conflict-free net batches concurrently with identical "
            "results, see docs/parallelism.md)",
        )
        p.add_argument(
            "--sanitize",
            action="store_true",
            help="audit every speculative shared-state access against "
            "the declared overlay footprints and fail loudly on any "
            "undeclared access (see docs/static_analysis.md)",
        )
        p.add_argument(
            "--engine",
            choices=("object", "array", "auto"),
            default="auto",
            help="routing engine: the object-graph reference, the "
            "numpy-backed array core, or auto (array when numpy is "
            "available; both produce byte-identical reports, see "
            "docs/performance.md)",
        )
        p.add_argument(
            "--executor",
            choices=("auto", "thread", "process"),
            default="auto",
            help="parallel pool backend for --workers N: 'thread' "
            "shares routing state in-process, 'process' ships net "
            "batches to a multiprocessing pool over shared memory, "
            "'auto' picks process only on multi-core hosts; reports "
            "are byte-identical either way (see docs/parallelism.md)",
        )
        p.add_argument(
            "--perf",
            choices=("off", "counters", "full"),
            default="off",
            help="engine profiling: 'counters' records perf_* engine "
            "counters (heap traffic, overlay churn, cache refreshes) "
            "in the trace, 'full' additionally emits per-net/per-task "
            "progress events; 'off' is zero-cost and byte-identical "
            "to the committed baselines (see docs/observability.md)",
        )

    route = sub.add_parser("route", help="route one circuit")
    route.add_argument("circuit")
    route.add_argument("--scale", type=float, default=0.05)
    route.add_argument("--baseline", action="store_true")
    _workers_flag(route)
    route.add_argument("--svg", help="write the routing plot")
    route.add_argument("--report", help="write the JSON violation report")
    route.add_argument("--save-design", help="write the design snapshot")
    route.add_argument(
        "--profile",
        nargs="?",
        const="trace.json",
        metavar="JSON",
        help="write the per-stage trace (default: trace.json)",
    )
    route.add_argument(
        "--stream",
        metavar="NDJSON",
        help="append live trace events to this NDJSON file while the "
        "run executes (.gz writes gzip); tail it with `repro watch`",
    )
    route.set_defaults(func=_cmd_route)

    compare = sub.add_parser("compare", help="baseline vs stitch-aware")
    compare.add_argument("circuit")
    compare.add_argument("--scale", type=float, default=0.05)
    _workers_flag(compare)
    compare.add_argument(
        "--profile",
        nargs="?",
        const="trace",
        metavar="PREFIX",
        help="write one trace per router as PREFIX_<label>.json "
        "(default prefix: trace)",
    )
    compare.set_defaults(func=_cmd_compare)

    diag = sub.add_parser(
        "diag",
        help="per-stitch-line violation diagnosis of one circuit",
    )
    diag.add_argument("circuit")
    diag.add_argument("--scale", type=float, default=0.05)
    diag.add_argument("--baseline", action="store_true")
    _workers_flag(diag)
    diag.add_argument(
        "--report", help="also write the JSON report (with attributions)"
    )
    diag.set_defaults(func=_cmd_diag)

    lint = sub.add_parser(
        "lint",
        help="determinism linter (DET rules, docs/static_analysis.md)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--baseline",
        metavar="JSON",
        help="baseline file of grandfathered findings "
        "(default: ./lint-baseline.json when present)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings",
    )
    lint.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated DET codes to check (default: all rules)",
    )
    lint.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated DET codes to skip",
    )
    lint.set_defaults(func=_cmd_lint)

    races = sub.add_parser(
        "races",
        help="static concurrency-effect analyzer "
        "(CONC rules, docs/static_analysis.md)",
    )
    races.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src)",
    )
    races.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    races.add_argument(
        "--baseline",
        metavar="JSON",
        help="baseline file of grandfathered findings "
        "(default: ./races-baseline.json when present)",
    )
    races.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings",
    )
    races.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated CONC codes to check (default: all rules)",
    )
    races.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated CONC codes to skip",
    )
    races.set_defaults(func=_cmd_races)

    parity = sub.add_parser(
        "parity",
        help="static cross-backend parity analyzer "
        "(PAR rules, docs/static_analysis.md)",
    )
    parity.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src)",
    )
    parity.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parity.add_argument(
        "--baseline",
        metavar="JSON",
        help="baseline file of grandfathered findings "
        "(default: ./parity-baseline.json when present)",
    )
    parity.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings",
    )
    parity.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated PAR codes to check (default: all rules)",
    )
    parity.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated PAR codes to skip",
    )
    parity.set_defaults(func=_cmd_parity)

    check = sub.add_parser(
        "check",
        help="umbrella static gate: lint + races + parity "
        "(one exit code; --mypy/--ruff add the external tools)",
    )
    check.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src)",
    )
    check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    check.add_argument(
        "--mypy",
        action="store_true",
        help="also run mypy on the paths (error if not installed)",
    )
    check.add_argument(
        "--ruff",
        action="store_true",
        help="also run ruff check on the paths (error if not installed)",
    )
    check.set_defaults(func=_cmd_check)

    audit = sub.add_parser(
        "audit",
        help="route one circuit and independently verify the solution "
        "(AUD rules, docs/static_analysis.md)",
    )
    audit.add_argument("circuit")
    audit.add_argument("--scale", type=float, default=0.05)
    audit.add_argument("--baseline", action="store_true")
    _workers_flag(audit)
    audit.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    audit.add_argument(
        "--report", help="also write the JSON violation report"
    )
    audit.set_defaults(func=_cmd_audit)

    trace = sub.add_parser("trace", help="inspect saved trace JSONs")
    tsub = trace.add_subparsers(dest="trace_command", required=True)

    def _trace_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--key",
            help="trace label inside a BENCH_*.json document",
        )
        p.add_argument(
            "--markdown", action="store_true", help="render markdown tables"
        )

    show = tsub.add_parser("show", help="per-stage rollup of one trace")
    show.add_argument("trace")
    _trace_common(show)
    show.set_defaults(func=_cmd_trace_show)

    diff = tsub.add_parser(
        "diff",
        help="structured delta between two traces "
        "(exits 1 on counter drift or wall regression)",
    )
    diff.add_argument("old")
    diff.add_argument("new")
    _trace_common(diff)
    diff.add_argument("--key-old", help="label for OLD in a BENCH document")
    diff.add_argument("--key-new", help="label for NEW in a BENCH document")
    diff.add_argument(
        "--wall-tolerance",
        type=float,
        default=25.0,
        metavar="PCT",
        help="wall-time slowdown considered a regression (default 25%%)",
    )
    diff.add_argument(
        "--min-wall",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="skip wall comparison of stages under this floor",
    )
    diff.add_argument(
        "--no-wall",
        action="store_true",
        help="compare deterministic counters only (cross-machine diffs)",
    )
    diff.set_defaults(func=_cmd_trace_diff)

    top = tsub.add_parser("top", help="hotspot ranking by self wall time")
    top.add_argument("trace")
    top.add_argument("-n", type=int, default=10, help="entries to show")
    _trace_common(top)
    top.set_defaults(func=_cmd_trace_top)

    watch = sub.add_parser(
        "watch",
        help="tail a live `route --stream` NDJSON file with progress, "
        "rates, and hotspot deltas",
    )
    watch.add_argument("stream", help="the NDJSON stream file to tail")
    watch.add_argument(
        "--no-follow",
        action="store_true",
        help="stop at the current end of file instead of tailing",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="poll interval while tailing (default 0.5)",
    )
    watch.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up after this long without new events "
        "(default: wait forever)",
    )
    watch.set_defaults(func=_cmd_watch)

    perf_history = sub.add_parser(
        "perf-history",
        help="perf-trajectory report from committed BENCH_*.json / "
        "SPEEDUP_*.json artifacts",
    )
    perf_history.add_argument(
        "--dir",
        default=".",
        help="directory holding the artifacts (default: .)",
    )
    perf_history.add_argument(
        "--markdown", action="store_true", help="render markdown tables"
    )
    perf_history.set_defaults(func=_cmd_perf_history)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point (also used by ``python -m repro``)."""
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed stdout mid-print (watch and the
        # table commands are routinely piped); exit quietly.  Redirect
        # stdout so the interpreter's shutdown flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
