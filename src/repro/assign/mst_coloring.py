"""Baseline layer assignment: maximum-spanning-tree k-coloring.

The heuristic of Chen et al. [4] used as comparison in Table VI: build
a maximum spanning tree of the segment conflict graph, then k-color the
tree by BFS depth.  Every tree edge (the heavy ones) is guaranteed
bichromatic, but off-tree edges are ignored — which is why the solution
quality degrades as more layers become available (Fig. 9a-b).
"""

from __future__ import annotations

from ..algorithms import color_forest_by_depth, maximum_spanning_forest
from .conflict_graph import Edge


def mst_kcoloring(
    vertices: list[int], edges: list[Edge], k: int
) -> dict[int, int]:
    """k-color the conflict graph via its maximum spanning tree."""
    forest = maximum_spanning_forest(vertices, edges)
    return color_forest_by_depth(vertices, forest, k)
