"""Design-level track assignment driver.

Combines the layer assignment with per-(panel, layer) track assignment:
column panels go through the selected short-polygon-avoiding algorithm
(baseline / ILP / graph heuristic, Table VII); row panels use the
conventional left-edge assigner for every method, since horizontal
tracks are not constrained by (vertical) stitching lines.

Nets owning a failed segment are reported so the detailed router can
rip them up and route them directly (Section IV-A).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

from ..config import TrackMethod
from ..globalroute import GlobalGraph
from ..layout import Design, StitchingLines
from ..observe import Tracer, ensure
from .layer_assign import LayerAssignment
from .panels import Panel, PanelSegment
from .track_baseline import assign_tracks_baseline
from .track_common import TrackAssignmentResult
from .track_graph import assign_tracks_graph
from .track_ilp import assign_tracks_ilp

#: Stitch-free line set used for row panels (y tracks are unaffected by
#: vertical stitching lines).
_NO_STITCHES = StitchingLines(())


@dataclasses.dataclass
class DesignTrackAssignment:
    """Track assignment of every (panel, layer) of a design."""

    columns: dict[tuple[int, int], TrackAssignmentResult]
    rows: dict[tuple[int, int], TrackAssignmentResult]
    failed_nets: set[str]
    cpu_seconds: float

    @property
    def num_bad_ends(self) -> int:
        """Total bad ends over all column panels."""
        return sum(r.num_bad_ends for r in self.columns.values())

    def bad_ends_per_net(self) -> dict[str, int]:
        """Bad-end count per net (for stitch-aware net ordering)."""
        counts: dict[str, int] = {}
        for result in self.columns.values():
            by_index = {seg.index: seg for seg in result.panel.segments}
            for seg_index, _row in result.bad_ends:
                net = by_index[seg_index].net
                counts[net] = counts.get(net, 0) + 1
        return counts


def assign_tracks(
    design: Design,
    graph: GlobalGraph,
    layers: LayerAssignment,
    method: TrackMethod = TrackMethod.GRAPH,
    tracer: Optional[Tracer] = None,
) -> DesignTrackAssignment:
    """Track-assign every panel of a globally routed design.

    Counters recorded on ``tracer``: per-method model sizes (graph
    constraint-graph nodes vs ILP variables), failed segments, and the
    bad-end total the detailed router will order by.
    """
    assert design.stitches is not None
    tracer = ensure(tracer)
    start = time.perf_counter()
    columns: dict[tuple[int, int], TrackAssignmentResult] = {}
    rows: dict[tuple[int, int], TrackAssignmentResult] = {}
    failed_nets: set[str] = set()

    with tracer.span("track-assign", method=method.value) as span:
        for pos, panel_assignment in layers.columns.items():
            tile_span = graph.tile_span((pos, 0))
            xs = list(range(tile_span.x_lo, tile_span.x_hi + 1))
            for layer, sub_panel in _split_by_layer(panel_assignment).items():
                result = _run_column_method(
                    method, sub_panel, xs, design.stitches
                )
                columns[(pos, layer)] = result
                failed_nets.update(_nets_of(sub_panel, result.failed))

        for pos, panel_assignment in layers.rows.items():
            tile_span = graph.tile_span((0, pos))
            ys = list(range(tile_span.y_lo, tile_span.y_hi + 1))
            for layer, sub_panel in _split_by_layer(panel_assignment).items():
                result = assign_tracks_baseline(sub_panel, ys, _NO_STITCHES)
                rows[(pos, layer)] = result
                failed_nets.update(_nets_of(sub_panel, result.failed))

        for result in list(columns.values()) + list(rows.values()):
            for key, value in result.stats.items():
                span.count(key, value)
            span.count("failed_segments", len(result.failed))
        span.count(
            "bad_ends", sum(r.num_bad_ends for r in columns.values())
        )
        span.gauge("column_problems", len(columns))
        span.gauge("row_problems", len(rows))

    return DesignTrackAssignment(
        columns=columns,
        rows=rows,
        failed_nets=failed_nets,
        cpu_seconds=time.perf_counter() - start,
    )


def _run_column_method(
    method: TrackMethod,
    panel: Panel,
    xs: list[int],
    stitches: StitchingLines,
) -> TrackAssignmentResult:
    if method is TrackMethod.BASELINE:
        return assign_tracks_baseline(panel, xs, stitches)
    if method is TrackMethod.ILP:
        return assign_tracks_ilp(panel, xs, stitches)
    return assign_tracks_graph(panel, xs, stitches)


def _split_by_layer(panel_assignment) -> dict[int, Panel]:
    """Sub-panels per assigned layer, preserving segment indices."""
    panel = panel_assignment.panel
    by_layer: dict[int, list[PanelSegment]] = {}
    for seg in panel.segments:
        layer = panel_assignment.layer_of_segment[seg.index]
        by_layer.setdefault(layer, []).append(seg)
    return {
        layer: Panel(kind=panel.kind, position=panel.position, segments=segs)
        for layer, segs in by_layer.items()
    }


def _nets_of(panel: Panel, failed_indices: list[int]) -> set[str]:
    failed = set(failed_indices)
    return {seg.net for seg in panel.segments if seg.index in failed}
