"""Segment conflict graphs with the edge weights of Eq. (4).

For each panel, a vertex is a segment and an edge connects two segments
intersecting in some tiles.  The edge weight combines

* ``D_segment(vi, vj)`` — the maximum segment density over the tiles
  where the two segments overlap, and
* ``D_end(vi, vj)`` — the maximum line-end density over the tiles where
  line ends of both segments coincide (column panels only; row-panel
  line ends do not create short polygons).

Solving maximum-cut k-coloring on this graph distributes both wire
density and line-end density across the k layers (Fig. 8).
"""

from __future__ import annotations

from ..geometry import overlapping_pairs
from .panels import Panel, PanelKind

Edge = tuple[int, int, float]


def build_conflict_graph(panel: Panel) -> tuple[list[int], list[Edge]]:
    """Vertices (segment indices) and weighted edges of a panel.

    Edge weights follow Eq. (4); the line-end term is dropped for row
    panels.
    """
    vertices = [seg.index for seg in panel.segments]
    spans = [seg.span for seg in panel.segments]
    segment_density = panel.segment_density()
    end_density = panel.line_end_density()
    include_ends = panel.kind is PanelKind.COLUMN

    edges: list[Edge] = []
    for a, b in overlapping_pairs(spans):
        seg_a, seg_b = panel.segments[a], panel.segments[b]
        overlap = seg_a.span.intersection(seg_b.span)
        assert overlap is not None
        d_segment = max(
            segment_density[row] for row in range(overlap.lo, overlap.hi + 1)
        )
        d_end = 0
        if include_ends:
            shared_end_rows = set(seg_a.line_end_rows) & set(
                seg_b.line_end_rows
            )
            if shared_end_rows:
                d_end = max(end_density[row] for row in shared_end_rows)
        edges.append((seg_a.index, seg_b.index, float(d_segment + d_end)))
    return vertices, edges


def vertex_weights(
    vertices: list[int], edges: list[Edge]
) -> dict[int, float]:
    """Sum of incident edge weights per vertex (Section III-B)."""
    weights = {v: 0.0 for v in vertices}
    for u, v, w in edges:
        weights[u] += w
        weights[v] += w
    return weights
