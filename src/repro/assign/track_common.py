"""Shared model for track assignment (Section III-C).

A *track assignment problem* places the segments of one (panel, layer)
pair onto exact tracks.  For a column panel the tracks are the x
coordinates inside the panel's tile column; the track occupied by a
stitching line is forbidden (vertical routing constraint) and tracks
within ε of a line are *stitch unfriendly*: a segment line end assigned
there is a **bad end** — the seed of a short polygon (Section III-C).

Tracks between two consecutive stitching lines form a *region*; the
graph-based assigner works region by region, as in Fig. 11.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from typing import Optional

from ..layout import StitchingLines
from .panels import Panel, PanelSegment


@dataclasses.dataclass(frozen=True)
class TrackRegion:
    """Consecutive usable tracks between stitching lines.

    Attributes:
        xs: usable track coordinates, ascending (stitch-line tracks
            excluded).
        sur_left: number of leading tracks inside the stitch
            unfriendly region of the line bounding the region's left.
        sur_right: number of trailing tracks inside the unfriendly
            region of the right bounding line.
    """

    xs: tuple[int, ...]
    sur_left: int
    sur_right: int

    @property
    def num_tracks(self) -> int:
        """Usable track count."""
        return len(self.xs)

    def is_unfriendly(self, track_index: int) -> bool:
        """Whether 0-based ``track_index`` is in a stitch unfriendly region."""
        return (
            track_index < self.sur_left
            or track_index >= self.num_tracks - self.sur_right
        )


def regions_of_span(
    x_lo: int, x_hi: int, stitches: StitchingLines
) -> list[TrackRegion]:
    """Split the track span ``[x_lo, x_hi]`` at stitching lines."""
    lines = set(stitches.lines_in_range(x_lo, x_hi))
    regions: list[TrackRegion] = []
    current: list[int] = []
    for x in range(x_lo, x_hi + 1):
        if x in lines:
            if current:
                regions.append(_make_region(current, stitches))
                current = []
        else:
            current.append(x)
    if current:
        regions.append(_make_region(current, stitches))
    return regions


def _make_region(xs: list[int], stitches: StitchingLines) -> TrackRegion:
    sur_left = 0
    for x in xs:
        if stitches.in_unfriendly_region(x):
            sur_left += 1
        else:
            break
    sur_right = 0
    for x in reversed(xs):
        if stitches.in_unfriendly_region(x):
            sur_right += 1
        else:
            break
    if sur_left >= len(xs):
        # Entire region unfriendly; split the blame evenly.
        sur_left = len(xs) // 2
        sur_right = len(xs) - sur_left
    return TrackRegion(xs=tuple(xs), sur_left=sur_left, sur_right=sur_right)


@dataclasses.dataclass
class TrackAssignmentResult:
    """Track assignment of one (panel, layer) problem.

    Attributes:
        panel: the panel whose segments were assigned (already filtered
            to one layer).
        tracks: ``segment index -> {tile row -> x coordinate}``; a
            segment whose rows map to different x values doglegs at the
            tile boundary.
        failed: segments that could not be placed (to be ripped up and
            routed directly in detailed routing, Section IV-A).
        bad_ends: ``(segment index, tile row)`` pairs where a line end
            was left on a stitch-unfriendly track.
        stats: per-method model-size counters (e.g. constraint-graph
            node count for the graph assigner, variable count for the
            ILP), aggregated into the flow trace by ``assign_tracks``.
    """

    panel: Panel
    tracks: dict[int, dict[int, int]]
    failed: list[int]
    bad_ends: list[tuple[int, int]]
    stats: dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def num_bad_ends(self) -> int:
        """Count of line ends on stitch-unfriendly tracks."""
        return len(self.bad_ends)

    def track_of(self, segment_index: int, row: int) -> Optional[int]:
        """Assigned x of ``segment_index`` at ``row`` (None if failed)."""
        per_row = self.tracks.get(segment_index)
        if per_row is None:
            return None
        return per_row.get(row)

    def dogleg_count(self) -> int:
        """Number of track changes across all segments."""
        count = 0
        for per_row in self.tracks.values():
            xs = [per_row[r] for r in sorted(per_row)]
            count += sum(1 for a, b in zip(xs, xs[1:]) if a != b)
        return count


def find_bad_ends(
    segments: Sequence[PanelSegment],
    tracks: dict[int, dict[int, int]],
    stitches: StitchingLines,
) -> list[tuple[int, int]]:
    """Line ends placed on stitch-unfriendly tracks.

    Conservative per Section III-C: any line end on an unfriendly track
    is counted, since the connected horizontal wire may be cut by the
    nearby stitching line.
    """
    bad: list[tuple[int, int]] = []
    for seg in segments:
        per_row = tracks.get(seg.index)
        if not per_row:
            continue
        for row in seg.line_end_rows:
            x = per_row.get(row)
            if x is not None and stitches.in_unfriendly_region(x):
                bad.append((seg.index, row))
    return bad


def validate_assignment(
    segments: Sequence[PanelSegment],
    tracks: dict[int, dict[int, int]],
) -> list[str]:
    """Internal-consistency violations of a track assignment.

    Returns human-readable problem strings (empty when valid): two
    segments sharing a (row, x), or a segment missing a row of its
    span.
    """
    problems: list[str] = []
    occupied: dict[tuple[int, int], int] = {}
    by_index = {seg.index: seg for seg in segments}
    for index, per_row in tracks.items():
        seg = by_index[index]
        for row in range(seg.span.lo, seg.span.hi + 1):
            if row not in per_row:
                problems.append(f"segment {index} missing row {row}")
                continue
            key = (row, per_row[row])
            if key in occupied:
                problems.append(
                    f"segments {occupied[key]} and {index} collide at {key}"
                )
            occupied[key] = index
    return problems
