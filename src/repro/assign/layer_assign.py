"""Layer assignment driver (Section III-B).

For each panel: build the segment conflict graph, k-color it with the
chosen heuristic (k = number of layers in the panel's preferred
direction), and map coloring groups to physical layers so that groups
sharing many nets land on nearby layers — the via-minimizing group
ordering adopted from [4].
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

from ..algorithms import coloring_cost
from ..config import ColoringMethod
from ..layout import Technology
from ..observe import Tracer, ensure
from .conflict_graph import build_conflict_graph
from .flow_coloring import flow_kcoloring
from .mst_coloring import mst_kcoloring
from .panels import Panel


@dataclasses.dataclass
class PanelAssignment:
    """Layer assignment of one panel."""

    panel: Panel
    layer_of_segment: dict[int, int]
    coloring_cost: float


@dataclasses.dataclass
class LayerAssignment:
    """Layer assignment of every panel of a design."""

    columns: dict[int, PanelAssignment]
    rows: dict[int, PanelAssignment]
    cpu_seconds: float

    @property
    def total_cost(self) -> float:
        """Summed monochromatic conflict weight over all panels."""
        return sum(
            pa.coloring_cost
            for group in (self.columns, self.rows)
            for pa in group.values()
        )


def assign_panel(
    panel: Panel,
    k: int,
    method: ColoringMethod = ColoringMethod.FLOW,
    layers: list[int] | None = None,
    stats: Optional[dict[str, float]] = None,
) -> PanelAssignment:
    """k-color one panel and map colors to the given layer ids.

    When ``stats`` is given, conflict-graph size and min-cost-flow
    work counters are accumulated into it.
    """
    if k < 1:
        raise ValueError("need at least one layer")
    layers = layers if layers is not None else list(range(k))
    if len(layers) != k:
        raise ValueError("layers list must have k entries")
    vertices, edges = build_conflict_graph(panel)
    if stats is not None:
        stats["conflict_vertices"] = (
            stats.get("conflict_vertices", 0) + len(vertices)
        )
        stats["conflict_edges"] = stats.get("conflict_edges", 0) + len(edges)
        stats["conflict_weight"] = stats.get("conflict_weight", 0.0) + sum(
            w for _u, _v, w in edges
        )
    if k == 1:
        colors = {v: 0 for v in vertices}
    elif method is ColoringMethod.MST:
        colors = mst_kcoloring(vertices, edges, k)
    else:
        spans = {seg.index: seg.span for seg in panel.segments}
        colors = flow_kcoloring(vertices, spans, edges, k, stats=stats)
    cost = coloring_cost(edges, colors)
    if stats is not None:
        stats["coloring_cost"] = stats.get("coloring_cost", 0.0) + cost
    ordered = order_groups_for_vias(panel, colors, k)
    layer_of_segment = {
        v: layers[ordered.index(colors[v])] for v in vertices
    }
    return PanelAssignment(
        panel=panel, layer_of_segment=layer_of_segment, coloring_cost=cost
    )


def order_groups_for_vias(
    panel: Panel, colors: dict[int, int], k: int
) -> list[int]:
    """Order coloring groups so net-sharing groups sit on close layers.

    Greedy chaining on group affinity (number of nets present in both
    groups): start from the heaviest-affinity pair and repeatedly
    append the group with the highest affinity to the chain ends.
    Returns the color ids in layer order.
    """
    nets_per_color: list[set] = [set() for _ in range(k)]
    for seg in panel.segments:
        nets_per_color[colors[seg.index]].add(seg.net)

    def affinity(a: int, b: int) -> int:
        return len(nets_per_color[a] & nets_per_color[b])

    remaining = set(range(k))
    if k == 1:
        return [0]
    best_pair = max(
        (
            (affinity(a, b), -a, -b, a, b)
            for a in range(k)
            for b in range(a + 1, k)
        ),
        default=(0, 0, 0, 0, 1),
    )
    chain = [best_pair[3], best_pair[4]]
    remaining -= set(chain)
    while remaining:
        head, tail = chain[0], chain[-1]
        candidate = max(
            remaining, key=lambda c: (max(affinity(c, head), affinity(c, tail)), -c)
        )
        if affinity(candidate, head) >= affinity(candidate, tail):
            chain.insert(0, candidate)
        else:
            chain.append(candidate)
        remaining.discard(candidate)
    return chain


def assign_layers(
    columns: dict[int, Panel],
    rows: dict[int, Panel],
    technology: Technology,
    method: ColoringMethod = ColoringMethod.FLOW,
    tracer: Optional[Tracer] = None,
) -> LayerAssignment:
    """Layer-assign every panel of a design.

    Spans/counters recorded on ``tracer``: conflict-graph size, flow
    augmentations, and the achieved max-cut weight (total conflict
    weight minus the monochromatic coloring cost).
    """
    tracer = ensure(tracer)
    start = time.perf_counter()
    v_layers = technology.vertical_layers
    h_layers = technology.horizontal_layers
    stats: dict[str, float] = {}
    with tracer.span("layer-assign") as span:
        column_result = {
            pos: assign_panel(
                panel, len(v_layers), method, layers=v_layers, stats=stats
            )
            for pos, panel in columns.items()
        }
        row_result = {
            pos: assign_panel(
                panel, len(h_layers), method, layers=h_layers, stats=stats
            )
            for pos, panel in rows.items()
        }
        span.count("panels", len(columns) + len(rows))
        for key in (
            "conflict_vertices",
            "conflict_edges",
            "flow_augmentations",
            "flow_rounds",
        ):
            if key in stats:
                span.count(key, stats[key])
        total_weight = stats.get("conflict_weight", 0.0)
        cost = stats.get("coloring_cost", 0.0)
        span.gauge("conflict_weight", total_weight)
        span.gauge("coloring_cost", cost)
        span.gauge("max_cut_weight", total_weight - cost)
    return LayerAssignment(
        columns=column_result,
        rows=row_result,
        cpu_seconds=time.perf_counter() - start,
    )
