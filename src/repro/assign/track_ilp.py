"""ILP-based short-polygon-avoiding track assignment (Section III-C1).

The multicommodity-flow model of Fig. 10 solved exactly: every segment
is a commodity flowing from a source through one track vertex per
global tile row to a target; source/target edges onto stitch-unfriendly
tracks are removed when the corresponding end is a line end (bad-end
exclusion); track edges between adjacent rows allow doglegs and are
weighted by the track distance (wirelength/bend objective, Eq. (5)–(9)).

The paper solves this with CPLEX 12.3; we use ``scipy.optimize.milp``
(HiGHS).  As in the paper, the ILP is exact but prohibitively slow on
large panels — Table VII reports >100000 s and "NA" for the biggest
circuits — so callers should prefer the graph heuristic beyond small
designs.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from typing import Optional

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..layout import StitchingLines
from .panels import Panel, PanelSegment
from .track_common import TrackAssignmentResult, find_bad_ends
from .track_graph import _enforce_density

#: Maximum dogleg distance (in track indices) between adjacent rows.
#: Bounds the edge count; the paper's model is unbounded but real
#: doglegs span a couple of tracks.
DEFAULT_MAX_DOGLEG = 2


@dataclasses.dataclass(frozen=True)
class _Edge:
    """One directed edge of one commodity's flow graph."""

    segment: int
    kind: str  # "source", "track", "target"
    row: int  # row of the head vertex ("target": row of the tail)
    t_from: int  # track index of the tail (-1 for source edges)
    t_to: int  # track index of the head (-1 for target edges)
    weight: float


def assign_tracks_ilp(
    panel: Panel,
    xs: Sequence[int],
    stitches: StitchingLines,
    max_dogleg: int = DEFAULT_MAX_DOGLEG,
) -> TrackAssignmentResult:
    """Optimal stitch-aware track assignment of one (panel, layer)."""
    usable = [x for x in xs if not stitches.is_on_line(x)]
    if not usable:
        return TrackAssignmentResult(
            panel=panel,
            tracks={},
            failed=[seg.index for seg in panel.segments],
            bad_ends=[],
        )
    unfriendly = [stitches.in_unfriendly_region(x) for x in usable]
    live, failed = _enforce_density(panel.segments, len(usable))
    if not live:
        return TrackAssignmentResult(
            panel=panel, tracks={}, failed=failed, bad_ends=[]
        )

    stats: dict[str, float] = {}
    solution = _solve(
        live, usable, unfriendly, max_dogleg, exclude_bad=True, stats=stats
    )
    if solution is None:
        # Bad-end exclusions made the model infeasible: some bad ends
        # are unavoidable.  Re-solve with the exclusions turned into a
        # large penalty so the ILP still *minimizes* the bad-end count
        # before optimizing wirelength.
        solution = _solve(
            live,
            usable,
            unfriendly,
            max_dogleg,
            exclude_bad=False,
            bad_end_penalty=1000.0,
            stats=stats,
        )
    if solution is None:
        # Still infeasible (should not happen after the density guard);
        # fail everything so the router re-routes the nets directly.
        return TrackAssignmentResult(
            panel=panel,
            tracks={},
            failed=failed + [seg.index for seg in live],
            bad_ends=[],
            stats=stats,
        )
    bad = find_bad_ends(panel.segments, solution, stitches)
    return TrackAssignmentResult(
        panel=panel,
        tracks=solution,
        failed=failed,
        bad_ends=bad,
        stats=stats,
    )


def _solve(
    segments: Sequence[PanelSegment],
    usable: list[int],
    unfriendly: list[bool],
    max_dogleg: int,
    exclude_bad: bool,
    bad_end_penalty: float = 0.0,
    stats: Optional[dict[str, float]] = None,
) -> Optional[dict[int, dict[int, int]]]:
    edges = _build_edges(
        segments, usable, unfriendly, max_dogleg, exclude_bad, bad_end_penalty
    )
    if edges is None:
        return None
    num_vars = len(edges)
    if stats is not None:
        stats["track_ilp_variables"] = (
            stats.get("track_ilp_variables", 0) + num_vars
        )
    by_segment: dict[int, list[int]] = {}
    for idx, edge in enumerate(edges):
        by_segment.setdefault(edge.segment, []).append(idx)

    rows_lhs: list[sparse.csr_matrix] = []
    lows: list[float] = []
    highs: list[float] = []

    def add_constraint(indices: list[int], coeffs: list[float], lo, hi):
        data = np.asarray(coeffs, dtype=float)
        col = np.asarray(indices, dtype=int)
        row = np.zeros(len(indices), dtype=int)
        rows_lhs.append(
            sparse.csr_matrix((data, (row, col)), shape=(1, num_vars))
        )
        lows.append(lo)
        highs.append(hi)

    by_index = {seg.index: seg for seg in segments}
    # (5)/(6): unit flow out of each source and into each target.
    for idxs in by_segment.values():
        src = [i for i in idxs if edges[i].kind == "source"]
        tgt = [i for i in idxs if edges[i].kind == "target"]
        if not src or not tgt:
            return None
        add_constraint(src, [1.0] * len(src), 1.0, 1.0)
        add_constraint(tgt, [1.0] * len(tgt), 1.0, 1.0)

    # (7): conservation at every (row, track) vertex per commodity.
    for seg_index, idxs in by_segment.items():
        seg = by_index[seg_index]
        inflow: dict[tuple[int, int], list[int]] = {}
        outflow: dict[tuple[int, int], list[int]] = {}
        for i in idxs:
            e = edges[i]
            if e.kind == "source":
                inflow.setdefault((e.row, e.t_to), []).append(i)
            elif e.kind == "track":
                inflow.setdefault((e.row, e.t_to), []).append(i)
                outflow.setdefault((e.row - 1, e.t_from), []).append(i)
            else:  # target
                outflow.setdefault((e.row, e.t_from), []).append(i)
        for node in sorted(set(inflow) | set(outflow)):
            ins = inflow.get(node, [])
            outs = outflow.get(node, [])
            add_constraint(
                ins + outs, [1.0] * len(ins) + [-1.0] * len(outs), 0.0, 0.0
            )

    # (8): each (row, track) vertex occupied by at most one segment.
    occupancy: dict[tuple[int, int], list[int]] = {}
    for i, e in enumerate(edges):
        if e.kind in ("source", "track"):
            occupancy.setdefault((e.row, e.t_to), []).append(i)
    for idxs in occupancy.values():
        if len(idxs) > 1:
            add_constraint(idxs, [1.0] * len(idxs), 0.0, 1.0)

    # (9): crossing track-edge pairs mutually exclusive.
    track_edge_groups: dict[tuple[int, int, int], list[int]] = {}
    for i, e in enumerate(edges):
        if e.kind == "track":
            track_edge_groups.setdefault((e.row, e.t_from, e.t_to), []).append(i)
    boundaries: dict[int, list[tuple[int, int, list[int]]]] = {}
    for (row, t_from, t_to), idxs in track_edge_groups.items():
        boundaries.setdefault(row, []).append((t_from, t_to, idxs))
    for group in boundaries.values():
        for a in range(len(group)):
            fa, ta, idx_a = group[a]
            for b in range(a + 1, len(group)):
                fb, tb, idx_b = group[b]
                if (fa - fb) * (ta - tb) < 0:
                    add_constraint(
                        idx_a + idx_b,
                        [1.0] * (len(idx_a) + len(idx_b)),
                        0.0,
                        1.0,
                    )

    objective = np.array([e.weight for e in edges], dtype=float)
    constraints = LinearConstraint(
        sparse.vstack(rows_lhs, format="csr"),
        np.asarray(lows),
        np.asarray(highs),
    )
    result = milp(
        c=objective,
        constraints=[constraints],
        integrality=np.ones(num_vars),
        bounds=Bounds(0.0, 1.0),
    )
    if not result.success:
        return None
    chosen = result.x > 0.5

    tracks: dict[int, dict[int, int]] = {}
    for i, e in enumerate(edges):
        if not chosen[i]:
            continue
        if e.kind in ("source", "track"):
            tracks.setdefault(e.segment, {})[e.row] = usable[e.t_to]
    return tracks


def _build_edges(
    segments: Sequence[PanelSegment],
    usable: list[int],
    unfriendly: list[bool],
    max_dogleg: int,
    exclude_bad: bool,
    bad_end_penalty: float = 0.0,
) -> Optional[list[_Edge]]:
    num_tracks = len(usable)
    edges: list[_Edge] = []
    for seg in segments:
        lo, hi = seg.span.lo, seg.span.hi
        end_lo = lo in seg.line_end_rows
        end_hi = hi in seg.line_end_rows
        exclude_lo = exclude_bad and end_lo
        exclude_hi = exclude_bad and end_hi
        any_source = False
        for t in range(num_tracks):
            if exclude_lo and unfriendly[t]:
                continue
            weight = (
                bad_end_penalty if (end_lo and unfriendly[t]) else 0.0
            )
            any_source = True
            edges.append(_Edge(seg.index, "source", lo, -1, t, weight))
        any_target = False
        for t in range(num_tracks):
            if exclude_hi and unfriendly[t]:
                continue
            weight = (
                bad_end_penalty if (end_hi and unfriendly[t]) else 0.0
            )
            any_target = True
            edges.append(_Edge(seg.index, "target", hi, t, -1, weight))
        if not any_source or not any_target:
            return None
        for row in range(lo + 1, hi + 1):
            for t_from in range(num_tracks):
                for t_to in range(
                    max(0, t_from - max_dogleg),
                    min(num_tracks, t_from + max_dogleg + 1),
                ):
                    weight = float(abs(usable[t_to] - usable[t_from]))
                    edges.append(
                        _Edge(seg.index, "track", row, t_from, t_to, weight)
                    )
    return edges
