"""Random layer-assignment instances (Tables V and VI).

The paper evaluates the two max-cut k-coloring heuristics on 50
randomly generated layer-assignment instances with identical interval
and tile counts; Table V reports their average/maximum segment and
line-end densities (max segment density ≈ 11.7, average ≈ 5.7; max
line-end density ≈ 6.1, average ≈ 2.0).  This generator is calibrated
to land in those bands.
"""

from __future__ import annotations

import dataclasses
import random  # repro: allow-DET002 seeded generator, see random_instance

from ..geometry import Interval
from .panels import Panel, PanelKind, PanelSegment

#: Instance shape calibrated against Table V (yields max/avg segment
#: density ≈ 10.6/5.9 and max/avg line-end density ≈ 6.2/2.6 over the
#: default 50-instance suite; the paper reports 11.68/5.72 and
#: 6.06/2.00).
DEFAULT_NUM_SEGMENTS = 28
DEFAULT_NUM_TILES = 24


def random_instance(
    seed: int,
    num_segments: int = DEFAULT_NUM_SEGMENTS,
    num_tiles: int = DEFAULT_NUM_TILES,
) -> Panel:
    """One random column-panel instance."""
    # Explicitly seeded: instances are a pure function of the seed, so
    # the Table V/VI suite is byte-reproducible everywhere.
    rng = random.Random(seed)  # repro: allow-DET002
    segments: list[PanelSegment] = []
    for idx in range(num_segments):
        length = rng.randint(
            max(1, num_tiles // 12), max(2, num_tiles // 3)
        )
        lo = rng.randint(0, num_tiles - length)
        segments.append(
            PanelSegment(
                net=f"net{idx}",
                index=idx,
                span=Interval(lo, lo + length - 1),
            )
        )
    return Panel(kind=PanelKind.COLUMN, position=0, segments=segments)


def instance_suite(
    count: int = 50,
    num_segments: int = DEFAULT_NUM_SEGMENTS,
    num_tiles: int = DEFAULT_NUM_TILES,
    seed: int = 20130601,
) -> list[Panel]:
    """The 50-instance suite of Tables V/VI (deterministic)."""
    return [
        random_instance(seed + i, num_segments, num_tiles)
        for i in range(count)
    ]


@dataclasses.dataclass(frozen=True)
class InstanceStats:
    """Table V row: density characteristics of an instance suite."""

    count: int
    max_segment_density: float
    avg_segment_density: float
    max_line_end_density: float
    avg_line_end_density: float


def suite_stats(panels: list[Panel]) -> InstanceStats:
    """Aggregate Table V statistics over a suite."""
    max_seg = [float(p.max_segment_density()) for p in panels]
    max_end = [float(p.max_line_end_density()) for p in panels]
    avg_seg = []
    avg_end = []
    for p in panels:
        seg_density = p.segment_density()
        end_density = p.line_end_density()
        tiles = max(len(seg_density), 1)
        avg_seg.append(sum(seg_density.values()) / tiles)
        avg_end.append(sum(end_density.values()) / max(len(end_density), 1))
    n = len(panels)
    return InstanceStats(
        count=n,
        max_segment_density=sum(max_seg) / n,
        avg_segment_density=sum(avg_seg) / n,
        max_line_end_density=sum(max_end) / n,
        avg_line_end_density=sum(avg_end) / n,
    )
