"""Panels and wire segments between global and detailed routing.

After 2-D global routing, every net's tile paths decompose into maximal
straight runs.  A vertical run lives in a *column panel* (a column of
global tiles) and a horizontal run in a *row panel* (Section III-B).
Layer assignment distributes the segments of a panel over the layers of
the matching preferred direction; track assignment then picks exact
tracks inside the panel.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Sequence

from ..geometry import Interval
from ..globalroute import GlobalRoutingResult


class PanelKind(enum.Enum):
    """Panel orientation."""

    COLUMN = "column"
    ROW = "row"


@dataclasses.dataclass(frozen=True)
class PanelSegment:
    """One maximal straight run of a net inside a panel.

    Attributes:
        net: owning net name.
        index: id unique within the panel.
        span: tile-index interval along the panel axis (rows for a
            column panel, columns for a row panel).
        has_low_end / has_high_end: whether the run terminates (with a
            line end) at span.lo / span.hi, as opposed to continuing as
            a pin connection inside the end tile.  Global-route runs
            always terminate; the flags exist so callers can model
            pass-through segments in unit tests.
    """

    net: str
    index: int
    span: Interval
    has_low_end: bool = True
    has_high_end: bool = True

    @property
    def line_end_rows(self) -> tuple[int, ...]:
        """Tile positions along the panel that hold a line end."""
        rows = []
        if self.has_low_end:
            rows.append(self.span.lo)
        if self.has_high_end:
            rows.append(self.span.hi)
        return tuple(rows)

    @property
    def length(self) -> int:
        """Number of tiles the run covers."""
        return self.span.length


@dataclasses.dataclass
class Panel:
    """All segments of one panel."""

    kind: PanelKind
    position: int
    segments: list[PanelSegment]

    def __len__(self) -> int:
        return len(self.segments)

    def segment_density(self) -> dict[int, int]:
        """Per-tile segment density along the panel axis."""
        density: dict[int, int] = {}
        for seg in self.segments:
            for row in range(seg.span.lo, seg.span.hi + 1):
                density[row] = density.get(row, 0) + 1
        return density

    def line_end_density(self) -> dict[int, int]:
        """Per-tile line-end density along the panel axis."""
        density: dict[int, int] = {}
        for seg in self.segments:
            for row in seg.line_end_rows:
                density[row] = density.get(row, 0) + 1
        return density

    def max_segment_density(self) -> int:
        """Worst per-tile segment density (0 when empty)."""
        density = self.segment_density()
        return max(density.values()) if density else 0

    def max_line_end_density(self) -> int:
        """Worst per-tile line-end density (0 when empty)."""
        density = self.line_end_density()
        return max(density.values()) if density else 0


def runs_of_path(path: Sequence[tuple[int, int]]) -> list[tuple[str, int, Interval]]:
    """Maximal straight runs of a tile path.

    Returns tuples ``(kind, position, span)`` where ``kind`` is ``"v"``
    (vertical run in column ``position`` spanning tile rows ``span``)
    or ``"h"`` (horizontal run in row ``position`` spanning columns).
    Runs of a single tile (a path that immediately turns) are attached
    to the neighbouring runs and do not appear on their own.
    """
    runs: list[tuple[str, int, Interval]] = []
    if len(path) < 2:
        return runs
    start = 0
    kind = "v" if path[1][0] == path[0][0] else "h"
    for idx in range(1, len(path)):
        step_kind = "v" if path[idx][0] == path[idx - 1][0] else "h"
        if step_kind != kind:
            runs.append(_run(kind, path[start], path[idx - 1]))
            start = idx - 1
            kind = step_kind
    runs.append(_run(kind, path[start], path[-1]))
    return runs


def _run(
    kind: str, a: tuple[int, int], b: tuple[int, int]
) -> tuple[str, int, Interval]:
    if kind == "v":
        return ("v", a[0], Interval(min(a[1], b[1]), max(a[1], b[1])))
    return ("h", a[1], Interval(min(a[0], b[0]), max(a[0], b[0])))


def extract_panels(
    result: GlobalRoutingResult,
) -> tuple[dict[int, Panel], dict[int, Panel]]:
    """Build the column and row panels of a global routing solution.

    Returns ``(column_panels, row_panels)`` keyed by panel position.
    """
    graph = result.graph
    columns: dict[int, Panel] = {
        i: Panel(PanelKind.COLUMN, i, []) for i in range(graph.nx)
    }
    rows: dict[int, Panel] = {
        j: Panel(PanelKind.ROW, j, []) for j in range(graph.ny)
    }
    for name in sorted(result.routes):
        route = result.routes[name]
        for path in route.paths:
            for kind, position, span in runs_of_path(path):
                panel = columns[position] if kind == "v" else rows[position]
                panel.segments.append(
                    PanelSegment(net=name, index=len(panel.segments), span=span)
                )
    return columns, rows
