"""Conventional (stitch-oblivious) track assignment.

The baseline of Tables III and VII: classic left-edge style assignment
that minimizes track count and ignores stitching lines entirely.  Each
segment gets one straight track (no doglegs).  Segments that land on a
track occupied by a stitching line violate the vertical routing
constraint; following Section IV-A, the caller rips those up and routes
the nets directly in detailed routing — they are reported in
``failed``.  Segments that simply do not fit (density above track
count) are also reported as failed.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..algorithms import greedy_interval_coloring
from ..layout import StitchingLines
from .panels import Panel
from .track_common import TrackAssignmentResult, find_bad_ends


def assign_tracks_baseline(
    panel: Panel,
    xs: Sequence[int],
    stitches: StitchingLines,
) -> TrackAssignmentResult:
    """Left-edge track assignment onto the raw track list ``xs``.

    Args:
        panel: segments of one (panel, layer).
        xs: every track coordinate of the panel span, including tracks
            occupied by stitching lines (the baseline does not know
            about them).
        stitches: used only to *report* which placements ended up on
            stitching lines (failed) and which line ends are bad.
    """
    colors = greedy_interval_coloring([seg.span for seg in panel.segments])
    tracks: dict[int, dict[int, int]] = {}
    failed: list[int] = []
    for position, seg in enumerate(panel.segments):
        color = colors[position]
        if color >= len(xs):
            failed.append(seg.index)
            continue
        x = xs[color]
        if stitches.is_on_line(x):
            # Vertical routing violation: rip up (Section IV-A).
            failed.append(seg.index)
            continue
        tracks[seg.index] = {
            row: x for row in range(seg.span.lo, seg.span.hi + 1)
        }
    bad = find_bad_ends(panel.segments, tracks, stitches)
    return TrackAssignmentResult(
        panel=panel,
        tracks=tracks,
        failed=failed,
        bad_ends=bad,
        stats={"track_baseline_segments": len(panel.segments)},
    )
