"""The proposed layer-assignment heuristic (Section III-B, Fig. 9c-e).

Iteratively extract from the remaining conflict graph a k-colorable
vertex set of maximum total vertex weight (vertex weight = sum of
incident edge weights).  On interval graphs this subproblem is solved
exactly in polynomial time with a min-cost flow (Carlisle–Lloyd).  The
coloring groups of each new set are merged into the accumulated groups
with a minimum-weight perfect bipartite matching, where the cost of
fusing two groups is the total conflict edge weight between them.
"""

from __future__ import annotations

from typing import Optional

from ..algorithms import hungarian, max_weight_k_colorable
from ..geometry import Interval
from .conflict_graph import Edge, vertex_weights


def flow_kcoloring(
    vertices: list[int],
    spans: dict[int, Interval],
    edges: list[Edge],
    k: int,
    stats: Optional[dict[str, float]] = None,
) -> dict[int, int]:
    """k-color a segment conflict graph by iterated max-weight extraction.

    Args:
        vertices: segment indices.
        spans: the interval of each segment (the conflict graph must be
            the interval graph of these spans).
        edges: weighted conflict edges.
        k: number of available layers (colors).
        stats: optional accumulator for extraction-round and min-cost
            flow work counters (``flow_rounds``, ``flow_augmentations``).

    Returns:
        A color in ``range(k)`` for every vertex.
    """
    if k < 1:
        raise ValueError("k must be positive")
    remaining = set(vertices)
    groups: list[set] = [set() for _ in range(k)]
    edge_lookup: dict[int, list[Edge]] = {v: [] for v in vertices}
    for u, v, w in edges:
        edge_lookup[u].append((u, v, w))
        edge_lookup[v].append((u, v, w))

    first_round = True
    while remaining:
        ordered = sorted(remaining)
        # Vertex weights over the *remaining* graph only.
        live_edges = [
            (u, v, w) for u, v, w in edges if u in remaining and v in remaining
        ]
        weights_map = vertex_weights(ordered, live_edges)
        intervals = [spans[v] for v in ordered]
        # Strictly positive weights keep zero-conflict vertices selectable.
        weights = [weights_map[v] + 1e-6 for v in ordered]
        if stats is not None:
            stats["flow_rounds"] = stats.get("flow_rounds", 0) + 1
        selected_pos, colors_pos = max_weight_k_colorable(
            intervals, weights, k, stats=stats
        )
        if not selected_pos:
            # No interval fits (cannot happen: a single interval is
            # always 1-colorable), guard against infinite loops anyway.
            selected_pos = [0]
            colors_pos = {0: 0}
        new_groups: list[set] = [set() for _ in range(k)]
        for pos in selected_pos:
            new_groups[colors_pos[pos]].add(ordered[pos])
        remaining -= {ordered[pos] for pos in selected_pos}

        if first_round:
            groups = new_groups
            first_round = False
        else:
            groups = _merge_groups(groups, new_groups, edge_lookup)

    coloring: dict[int, int] = {}
    for color, members in enumerate(groups):
        for v in members:
            coloring[v] = color
    return coloring


def _merge_groups(
    groups: list[set],
    new_groups: list[set],
    edge_lookup: dict[int, list[Edge]],
) -> list[set]:
    """Fuse new coloring groups into the accumulated ones (Fig. 9d).

    A complete bipartite graph is built between the two group families
    (padding with empty pseudo groups is implicit since both sides have
    exactly k groups); edge weights are the total conflict edge weight
    between the two groups, and a min-weight perfect matching decides
    the fusion.
    """
    k = len(groups)
    cost = [
        [_conflict_between(groups[i], new_groups[j], edge_lookup) for j in range(k)]
        for i in range(k)
    ]
    assignment = hungarian(cost)
    merged = [set(groups[i]) | set(new_groups[assignment[i]]) for i in range(k)]
    return merged


def _conflict_between(
    group_a: set, group_b: set, edge_lookup: dict[int, list[Edge]]
) -> float:
    if not group_a or not group_b:
        return 0.0
    smaller, other = (
        (group_a, group_b) if len(group_a) <= len(group_b) else (group_b, group_a)
    )
    total = 0.0
    for v in smaller:
        for u1, u2, w in edge_lookup[v]:
            peer = u2 if u1 == v else u1
            if peer in other:
                total += w
    return total
