"""Layer and track assignment (Sections III-B and III-C)."""

from .conflict_graph import build_conflict_graph, vertex_weights
from .flow_coloring import flow_kcoloring
from .instances import (
    InstanceStats,
    instance_suite,
    random_instance,
    suite_stats,
)
from .layer_assign import (
    ColoringMethod,
    LayerAssignment,
    PanelAssignment,
    assign_layers,
    assign_panel,
    order_groups_for_vias,
)
from .mst_coloring import mst_kcoloring
from .panels import (
    Panel,
    PanelKind,
    PanelSegment,
    extract_panels,
    runs_of_path,
)
from .track_assign import (
    DesignTrackAssignment,
    TrackMethod,
    assign_tracks,
)
from .track_baseline import assign_tracks_baseline
from .track_common import (
    TrackAssignmentResult,
    TrackRegion,
    find_bad_ends,
    regions_of_span,
    validate_assignment,
)
from .track_graph import assign_tracks_graph
from .track_ilp import assign_tracks_ilp

__all__ = [
    "ColoringMethod",
    "DesignTrackAssignment",
    "InstanceStats",
    "LayerAssignment",
    "Panel",
    "PanelAssignment",
    "PanelKind",
    "PanelSegment",
    "TrackAssignmentResult",
    "TrackMethod",
    "TrackRegion",
    "assign_layers",
    "assign_panel",
    "assign_tracks",
    "assign_tracks_baseline",
    "assign_tracks_graph",
    "assign_tracks_ilp",
    "build_conflict_graph",
    "extract_panels",
    "find_bad_ends",
    "flow_kcoloring",
    "instance_suite",
    "mst_kcoloring",
    "order_groups_for_vias",
    "random_instance",
    "regions_of_span",
    "runs_of_path",
    "suite_stats",
    "validate_assignment",
    "vertex_weights",
]
