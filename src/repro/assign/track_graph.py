"""Graph-based short-polygon-avoiding track assignment (Section III-C2).

Per track region (the tracks between two stitching lines):

1. **Segment ordering** — longer segments are placed next to the
   stitching lines (they have the flexibility to dogleg away from bad
   ends); segments not overlapping those tentative bad ends come next;
   the rest fill the middle (Fig. 11a-b).
2. **Interval splitting** — each segment is divided into one interval
   per global tile row (Fig. 11c).
3. **Constraint graphs** — the minimum and maximum track constraint
   graphs encode "interval i is left of interval j" with unit edges;
   a dummy vertex with a source edge weighted by the stitch-unfriendly
   width keeps line-end intervals off unfriendly tracks.  DAG longest
   paths give each interval its feasible window ``[m, M]`` (Fig. 11d).
4. **Sequential assignment** — tracks are chosen left to right inside
   the windows, preferring a single straight track per segment and
   using doglegs only where needed (Fig. 11e).

When density makes bad ends unavoidable, the dummy constraints of the
affected intervals are relaxed (they become recorded bad ends) rather
than failing the segment; segments are only failed when raw density
exceeds the region's track count.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from typing import Optional

from ..algorithms import longest_path_lengths
from ..layout import StitchingLines
from .panels import Panel, PanelSegment
from .track_common import (
    TrackAssignmentResult,
    TrackRegion,
    find_bad_ends,
    regions_of_span,
)


def assign_tracks_graph(
    panel: Panel,
    xs: Sequence[int],
    stitches: StitchingLines,
) -> TrackAssignmentResult:
    """Stitch-aware track assignment of one (panel, layer).

    Args:
        panel: the segments to place.
        xs: contiguous track coordinates of the panel span (stitch-line
            tracks included; they are carved out into regions here).
        stitches: stitching-line set of the design.
    """
    regions = regions_of_span(min(xs), max(xs), stitches) if xs else []
    if not regions:
        return TrackAssignmentResult(
            panel=panel,
            tracks={},
            failed=[seg.index for seg in panel.segments],
            bad_ends=[],
        )
    assignment_by_region = _distribute_segments(panel.segments, regions)

    tracks: dict[int, dict[int, int]] = {}
    failed: list[int] = []
    for region, segments in zip(regions, assignment_by_region):
        placed, region_failed = _assign_region(segments, region)
        tracks.update(placed)
        failed.extend(region_failed)
    bad = find_bad_ends(panel.segments, tracks, stitches)
    # Constraint-graph size: one node per (segment, row) interval —
    # the quantity that scales the longest-path computations.
    graph_nodes = sum(
        seg.span.hi - seg.span.lo + 1 for seg in panel.segments
    )
    return TrackAssignmentResult(
        panel=panel,
        tracks=tracks,
        failed=failed,
        bad_ends=bad,
        stats={"track_graph_nodes": graph_nodes},
    )


# ----------------------------------------------------------------------
# Region distribution
# ----------------------------------------------------------------------
def _distribute_segments(
    segments: Sequence[PanelSegment], regions: list[TrackRegion]
) -> list[list[PanelSegment]]:
    """Split the panel's segments across its track regions.

    Greedy balance: longest segments first, each to the region with the
    most remaining headroom (track count minus current max density on
    the segment's rows).  With the default configuration every panel
    has exactly one region and this is a pass-through.
    """
    if len(regions) == 1:
        return [list(segments)]
    buckets: list[list[PanelSegment]] = [[] for _ in regions]
    densities: list[dict[int, int]] = [dict() for _ in regions]
    for seg in sorted(segments, key=lambda s: (-s.length, s.index)):
        best = None
        best_headroom = None
        for idx, region in enumerate(regions):
            peak = max(
                (
                    densities[idx].get(row, 0)
                    for row in range(seg.span.lo, seg.span.hi + 1)
                ),
                default=0,
            )
            headroom = region.num_tracks - peak
            if best_headroom is None or headroom > best_headroom:
                best, best_headroom = idx, headroom
        assert best is not None
        buckets[best].append(seg)
        for row in range(seg.span.lo, seg.span.hi + 1):
            densities[best][row] = densities[best].get(row, 0) + 1
    return buckets


# ----------------------------------------------------------------------
# Single-region core
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _IntervalKey:
    segment: int
    row: int


def _assign_region(
    segments: Sequence[PanelSegment], region: TrackRegion
) -> tuple[dict[int, dict[int, int]], list[int]]:
    """Assign one region; returns (tracks, failed segment indices)."""
    if not segments:
        return {}, []
    capacity = region.num_tracks
    live, failed = _enforce_density(segments, capacity)
    if not live:
        return {}, failed
    order = _segment_order(live)
    windows = _feasible_windows(live, order, region)
    tracks = _sequential_assignment(live, order, windows, region)
    return tracks, failed


def _enforce_density(
    segments: Sequence[PanelSegment], capacity: int
) -> tuple[list[PanelSegment], list[int]]:
    """Drop shortest segments from over-dense rows (to be re-routed)."""
    live = sorted(segments, key=lambda s: (-s.length, s.index))
    failed: list[int] = []
    density: dict[int, int] = {}
    kept: list[PanelSegment] = []
    for seg in live:
        rows = range(seg.span.lo, seg.span.hi + 1)
        if any(density.get(row, 0) + 1 > capacity for row in rows):
            failed.append(seg.index)
            continue
        for row in rows:
            density[row] = density.get(row, 0) + 1
        kept.append(seg)
    kept.sort(key=lambda s: s.index)
    return kept, failed


def _segment_order(segments: Sequence[PanelSegment]) -> list[int]:
    """Left-to-right relative order of segment indices (Fig. 11b).

    The longest segments take the extreme (stitch-line-adjacent)
    positions, alternating left and right; the next positions prefer
    segments that do not overlap the tentative bad ends of those long
    segments; remaining segments fill the middle.
    """
    by_length = sorted(segments, key=lambda s: (-s.length, s.index))
    n = len(by_length)
    num_edge = min(2, n) if n < 4 else min(4, max(2, n // 3))
    edge_segments = by_length[:num_edge]
    rest = by_length[num_edge:]

    left: list[int] = []
    right: list[int] = []
    for i, seg in enumerate(edge_segments):
        (left if i % 2 == 0 else right).append(seg.index)
    right.reverse()

    # Rows where the edge segments have tentative bad ends.
    hot_rows: set[int] = set()
    for seg in edge_segments:
        hot_rows.update(seg.line_end_rows)

    def overlap_hot(seg: PanelSegment) -> bool:
        return any(seg.span.contains(row) for row in hot_rows)

    helpers = [s for s in rest if not overlap_hot(s)]
    others = [s for s in rest if overlap_hot(s)]
    middle = [s.index for s in helpers + others]
    return left + middle + right


def _feasible_windows(
    segments: Sequence[PanelSegment],
    order: list[int],
    region: TrackRegion,
) -> dict[_IntervalKey, tuple[int, int]]:
    """[m, M] window (1-based tracks) per interval via longest paths.

    Dummy constraints that make the window empty are relaxed one round
    at a time: those intervals will carry bad ends.
    """
    by_index = {seg.index: seg for seg in segments}
    position = {seg_index: pos for pos, seg_index in enumerate(order)}
    capacity = region.num_tracks

    intervals: list[_IntervalKey] = []
    row_chains: dict[int, list[_IntervalKey]] = {}
    for seg in segments:
        for row in range(seg.span.lo, seg.span.hi + 1):
            key = _IntervalKey(seg.index, row)
            intervals.append(key)
            row_chains.setdefault(row, []).append(key)
    for chain in row_chains.values():
        chain.sort(key=lambda k: position[k.segment])

    line_end_intervals = {
        _IntervalKey(seg.index, row)
        for seg in segments
        for row in seg.line_end_rows
    }
    relax_left: set[_IntervalKey] = set()
    relax_right: set[_IntervalKey] = set()

    for _ in range(len(intervals) + 1):
        m = _longest_from_side(
            intervals,
            row_chains,
            line_end_intervals - relax_left,
            region.sur_left,
            reverse=False,
        )
        dist_right = _longest_from_side(
            intervals,
            row_chains,
            line_end_intervals - relax_right,
            region.sur_right,
            reverse=True,
        )
        windows = {
            key: (int(m[key]), capacity + 1 - int(dist_right[key]))
            for key in intervals
        }
        infeasible = [k for k, (lo, hi) in windows.items() if lo > hi]
        if not infeasible:
            return windows
        # Relax the dummy constraint of infeasible line-end intervals;
        # if none is relaxable the density guard should have fired, but
        # clamp as a last resort.
        progressed = False
        for key in infeasible:
            if key in line_end_intervals:
                if key not in relax_left:
                    relax_left.add(key)
                    progressed = True
                elif key not in relax_right:
                    relax_right.add(key)
                    progressed = True
        if not progressed:
            return {
                key: (lo, max(lo, hi)) for key, (lo, hi) in windows.items()
            }
    return windows


def _longest_from_side(
    intervals: list[_IntervalKey],
    row_chains: dict[int, list[_IntervalKey]],
    constrained: set[_IntervalKey],
    sur_width: int,
    reverse: bool,
) -> dict[_IntervalKey, float]:
    """Longest path lengths of the min (or mirrored max) track graph."""
    source = "source"
    vertices: list[object] = [source] + list(intervals)
    edges: list[tuple[object, object, float]] = []
    for chain in row_chains.values():
        seq = list(reversed(chain)) if reverse else chain
        edges.append((source, seq[0], 1.0))
        for a, b in zip(seq, seq[1:]):
            edges.append((a, b, 1.0))
    if sur_width > 0:
        dummy = "dummy"
        vertices.append(dummy)
        edges.append((source, dummy, float(sur_width)))
        for key in sorted(constrained, key=lambda k: (k.segment, k.row)):
            edges.append((dummy, key, 1.0))
    dist = longest_path_lengths(vertices, edges, sources=[source])
    return {key: dist.get(key, 1.0) for key in intervals}


def _sequential_assignment(
    segments: Sequence[PanelSegment],
    order: list[int],
    windows: dict[_IntervalKey, tuple[int, int]],
    region: TrackRegion,
) -> dict[int, dict[int, int]]:
    """Left-to-right greedy track selection inside the windows (Fig 11e)."""
    by_index = {seg.index: seg for seg in segments}
    floor: dict[int, int] = {}
    tracks: dict[int, dict[int, int]] = {}
    for seg_index in order:
        seg = by_index[seg_index]
        rows = list(range(seg.span.lo, seg.span.hi + 1))
        lo_bounds = []
        hi_bounds = []
        for row in rows:
            key = _IntervalKey(seg_index, row)
            m, M = windows[key]
            lo_bounds.append(max(m, floor.get(row, 0) + 1))
            hi_bounds.append(M)
        # Straight track if the per-row windows intersect.
        straight_lo = max(lo_bounds)
        straight_hi = min(hi_bounds)
        per_row: dict[int, int] = {}
        if straight_lo <= straight_hi:
            track = straight_lo
            for row in rows:
                per_row[row] = track
        else:
            previous: Optional[int] = None
            for row, lo, hi in zip(rows, lo_bounds, hi_bounds):
                hi = max(hi, lo)  # clamped fallback for relaxed windows
                track = lo if previous is None else min(max(previous, lo), hi)
                per_row[row] = track
                previous = track
        for row, track in per_row.items():
            floor[row] = max(floor.get(row, 0), track)
        tracks[seg_index] = {
            row: region.xs[track - 1] for row, track in per_row.items()
        }
    return tracks
