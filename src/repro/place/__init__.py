"""Stitch-aware placement refinement (the paper's future-work stage)."""

from .refine import RefinementResult, refine_pin_placement

__all__ = ["RefinementResult", "refine_pin_placement"]
