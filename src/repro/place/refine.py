"""Stitch-aware placement refinement (the paper's future work).

Section V: via violations in Tables III/VII/VIII all come from *fixed*
pin positions on stitching lines; removing them needs stitch awareness
in the placement stage.  This module implements that extension as a
legalization-style refinement pass: pins sitting on a stitching line
(and optionally anywhere in a stitch unfriendly region) are nudged to
the nearest free column within a bounded displacement.

It deliberately mimics what a detailed placer could do late in the
flow — tiny, bounded moves that preserve the placement — so the
resulting #VV reduction (see ``benchmarks/ablations/
bench_ablation_placement.py``) estimates the paper's proposed gain.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..geometry import Point
from ..layout import Design, Net, Netlist, Pin


@dataclasses.dataclass
class RefinementResult:
    """Outcome of one placement refinement pass."""

    design: Design
    moved_pins: int
    unmovable_pins: int
    total_displacement: int

    @property
    def moved_fraction(self) -> float:
        """Share of offending pins that could be legalized."""
        offenders = self.moved_pins + self.unmovable_pins
        return self.moved_pins / offenders if offenders else 1.0


def refine_pin_placement(
    design: Design,
    max_shift: int = 2,
    avoid_unfriendly: bool = False,
) -> RefinementResult:
    """Nudge offending pins off stitching lines.

    Args:
        design: the placed design.
        max_shift: maximum x displacement per pin, in pitches.  Small
            bounds model a legalization pass that cannot disturb the
            placement.
        avoid_unfriendly: also move pins out of stitch unfriendly
            regions (eliminates pin-end short-polygon seeds as well,
            at the cost of more displacement).

    Returns:
        A :class:`RefinementResult` whose ``design`` is a new
        :class:`Design` with updated pin positions.
    """
    stitches = design.stitches
    assert stitches is not None

    def offending(x: int) -> bool:
        if avoid_unfriendly:
            return stitches.in_unfriendly_region(x)
        return stitches.is_on_line(x)

    taken: set[tuple[int, int]] = {
        (p.location.x, p.location.y) for p in design.netlist.pins
    }
    moved = 0
    unmovable = 0
    displacement = 0
    new_nets: list[Net] = []
    for net in design.netlist:
        new_pins: list[Pin] = []
        for pin in net.pins:
            x, y = pin.location.x, pin.location.y
            if not offending(x):
                new_pins.append(pin)
                continue
            target = _nearest_legal_x(
                x, y, max_shift, design.width, offending, taken
            )
            if target is None:
                unmovable += 1
                new_pins.append(pin)
                continue
            taken.discard((x, y))
            taken.add((target, y))
            moved += 1
            displacement += abs(target - x)
            new_pins.append(Pin(pin.name, Point(target, y), pin.layer))
        new_nets.append(Net(net.name, tuple(new_pins)))

    refined = Design(
        name=design.name,
        width=design.width,
        height=design.height,
        technology=design.technology,
        netlist=Netlist(new_nets),
        config=design.config,
        stitches=design.stitches,
    )
    return RefinementResult(
        design=refined,
        moved_pins=moved,
        unmovable_pins=unmovable,
        total_displacement=displacement,
    )


def _nearest_legal_x(
    x: int,
    y: int,
    max_shift: int,
    width: int,
    offending,
    taken: set[tuple[int, int]],
) -> Optional[int]:
    for distance in range(1, max_shift + 1):
        for candidate in (x - distance, x + distance):
            if not 0 <= candidate < width:
                continue
            if offending(candidate):
                continue
            if (candidate, y) in taken:
                continue
            return candidate
    return None
