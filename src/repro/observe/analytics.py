"""Trace analytics: rollups, diffing and hotspot extraction.

The tracer (:mod:`repro.observe.tracer`) records what happened; this
module answers the questions a perf PR has to answer from those
recordings:

* :class:`TraceSummary` — per-stage rollups (wall/CPU seconds, span
  counts, counters, gauges) aggregated over every span with the same
  name anywhere in the tree;
* :func:`diff_traces` — a structured delta between two runs.  Counters
  are deterministic (maze expansions, rip-up rounds, flow
  augmentations do not depend on machine speed), so any drift is a
  behavior change and requires an **exact** match; wall time is noisy,
  so stage timings regress only past a percentage threshold and a
  minimum-seconds floor;
* :func:`hotspots` — the top-N span paths by *self* wall time (time
  not attributed to child spans), i.e. where the run actually went;
* plain-text and markdown table rendering for all of the above, used
  by ``python -m repro trace {show,diff,top}`` and the benchmark
  regression gate.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from collections.abc import Sequence
from typing import Optional, Union

from ..reporting import format_table
from .schema import history_counters
from .tracer import Number, RunTrace, Span

PathLike = Union[str, pathlib.Path]


# ----------------------------------------------------------------------
# Per-stage rollups
# ----------------------------------------------------------------------
@dataclasses.dataclass
class StageStats:
    """Rollup of every span sharing one name across a trace.

    Attributes:
        name: the span name (e.g. ``"negotiation-round"``).
        spans: how many spans carried the name.
        wall_seconds: summed wall time of those spans.
        cpu_seconds: summed CPU time of those spans.
        counters: summed counters of those spans.
        gauges: last recorded value per gauge name.
    """

    name: str
    spans: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    counters: dict[str, Number] = dataclasses.field(default_factory=dict)
    gauges: dict[str, Number] = dataclasses.field(default_factory=dict)

    def absorb(self, span: Span) -> None:
        """Fold one span into the rollup."""
        self.spans += 1
        self.wall_seconds += span.wall_seconds
        self.cpu_seconds += span.cpu_seconds
        for name, value in span.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(span.gauges)


@dataclasses.dataclass
class TraceSummary:
    """Per-stage rollup view of one :class:`RunTrace`.

    Attributes:
        router: router label of the underlying trace.
        design: design name of the underlying trace.
        wall_seconds: end-to-end wall time.
        cpu_seconds: end-to-end CPU time.
        stages: rollups keyed by span name, in first-visit (depth
            first) order.
        counters: whole-run counter totals (spans + orphans).
    """

    router: str
    design: str
    wall_seconds: float
    cpu_seconds: float
    stages: dict[str, StageStats]
    counters: dict[str, Number]

    @classmethod
    def from_trace(cls, trace: RunTrace) -> "TraceSummary":
        """Roll a trace up by span name."""
        stages: dict[str, StageStats] = {}
        for span in trace.walk():
            stages.setdefault(span.name, StageStats(span.name)).absorb(span)
        return cls(
            router=trace.router,
            design=trace.design,
            wall_seconds=trace.wall_seconds,
            cpu_seconds=trace.cpu_seconds,
            stages=stages,
            counters=trace.aggregate_counters(),
        )

    def rows(self) -> list[dict]:
        """Table rows (one per stage) for rendering."""
        out = []
        for stats in self.stages.values():
            out.append(
                {
                    "stage": stats.name,
                    "spans": stats.spans,
                    "wall_s": stats.wall_seconds,
                    "cpu_s": stats.cpu_seconds,
                    "counters": _kv_text(stats.counters),
                }
            )
        return out


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class DiffThresholds:
    """What :func:`diff_traces` treats as a regression.

    Attributes:
        wall_pct: percentage slowdown past which a stage (or the whole
            run) is a wall-time regression.
        min_wall_seconds: stages faster than this in **both** traces
            are skipped for wall comparison — sub-floor timings are
            dominated by measurement noise.
        include_wall: compare wall time at all.  Disable when the two
            traces come from different machines (e.g. a committed
            baseline checked on CI hardware), where only the
            deterministic counters are comparable.
    """

    wall_pct: float = 25.0
    min_wall_seconds: float = 0.1
    include_wall: bool = True


@dataclasses.dataclass(frozen=True)
class CounterDelta:
    """One counter whose whole-run total changed between two traces."""

    name: str
    old: Number
    new: Number

    @property
    def delta(self) -> Number:
        """Signed change (new − old)."""
        return self.new - self.old

    def describe(self) -> str:
        """One-line human description."""
        sign = "+" if self.delta >= 0 else ""
        return f"counter {self.name}: {self.old} -> {self.new} ({sign}{self.delta})"


@dataclasses.dataclass(frozen=True)
class TimingDelta:
    """Wall-time change of one stage (or the whole run)."""

    stage: str
    old: float
    new: float
    regression: bool

    @property
    def pct(self) -> float:
        """Percentage change relative to the old timing."""
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return 100.0 * (self.new - self.old) / self.old

    def describe(self) -> str:
        """One-line human description."""
        return (
            f"wall {self.stage}: {self.old:.3f}s -> {self.new:.3f}s "
            f"({self.pct:+.1f}%)"
        )


@dataclasses.dataclass
class TraceDiff:
    """Structured delta between two runs, as produced by :func:`diff_traces`.

    Attributes:
        old_label: label of the reference trace.
        new_label: label of the candidate trace.
        counter_deltas: every counter whose total changed (any change
            is a regression — counters are deterministic).
        timing_deltas: every compared stage timing, regressions and
            improvements alike.
        thresholds: the thresholds the diff was computed with.
    """

    old_label: str
    new_label: str
    counter_deltas: list[CounterDelta]
    timing_deltas: list[TimingDelta]
    thresholds: DiffThresholds

    @property
    def wall_regressions(self) -> list[TimingDelta]:
        """Stage timings past the regression threshold."""
        return [t for t in self.timing_deltas if t.regression]

    @property
    def ok(self) -> bool:
        """Whether the candidate shows no regression at all."""
        return not self.counter_deltas and not self.wall_regressions

    def regressions(self) -> list[str]:
        """Human-readable description of every regression."""
        out = [d.describe() for d in self.counter_deltas]
        out += [t.describe() for t in self.wall_regressions]
        return out


def diff_traces(
    old: RunTrace,
    new: RunTrace,
    thresholds: Optional[DiffThresholds] = None,
) -> TraceDiff:
    """Structured delta of ``new`` against the reference ``old``.

    Deterministic counters (whole-run totals) must match exactly; any
    drift becomes a :class:`CounterDelta`.  Wall time is compared per
    stage rollup plus the end-to-end total, flagging slowdowns past
    ``thresholds.wall_pct`` when the stage exceeds the noise floor.
    """
    thresholds = thresholds or DiffThresholds()
    old_counters = old.aggregate_counters()
    new_counters = new.aggregate_counters()
    counter_deltas = [
        CounterDelta(name, old_counters.get(name, 0), new_counters.get(name, 0))
        for name in sorted(old_counters.keys() | new_counters.keys())
        if old_counters.get(name, 0) != new_counters.get(name, 0)
    ]

    timing_deltas: list[TimingDelta] = []
    if thresholds.include_wall:
        old_stages = TraceSummary.from_trace(old).stages
        new_stages = TraceSummary.from_trace(new).stages
        pairs: list[tuple[str, float, float]] = [
            (
                name,
                old_stages[name].wall_seconds if name in old_stages else 0.0,
                new_stages[name].wall_seconds if name in new_stages else 0.0,
            )
            for name in {**old_stages, **new_stages}
        ]
        pairs.append(("(total)", old.wall_seconds, new.wall_seconds))
        for name, old_wall, new_wall in pairs:
            if max(old_wall, new_wall) < thresholds.min_wall_seconds:
                continue
            slow = new_wall > old_wall * (1.0 + thresholds.wall_pct / 100.0)
            timing_deltas.append(
                TimingDelta(name, old_wall, new_wall, regression=slow)
            )

    return TraceDiff(
        old_label=_trace_label(old),
        new_label=_trace_label(new),
        counter_deltas=counter_deltas,
        timing_deltas=timing_deltas,
        thresholds=thresholds,
    )


def _trace_label(trace: RunTrace) -> str:
    parts = [p for p in (trace.design, trace.router) if p]
    return "/".join(parts) or "(unlabeled)"


# ----------------------------------------------------------------------
# Hotspots
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Hotspot:
    """Aggregated self time of one span path.

    Attributes:
        path: slash-joined span names from the root (e.g.
            ``"pass2/detailed-route/ripup-round"``); repeats of the
            same path (negotiation rounds, levels) are merged.
        spans: number of spans merged into the entry.
        self_wall_seconds: wall time not attributed to child spans.
        wall_seconds: inclusive wall time.
    """

    path: str
    spans: int
    self_wall_seconds: float
    wall_seconds: float


def hotspots(trace: RunTrace, n: int = 10) -> list[Hotspot]:
    """The ``n`` span paths with the largest *self* wall time.

    Self time is a span's wall time minus its children's — inclusive
    times would rank every ancestor of the real hotspot above it.
    """
    merged: dict[str, Hotspot] = {}

    def visit(span: Span, prefix: str) -> None:
        path = f"{prefix}/{span.name}" if prefix else span.name
        child_wall = sum(c.wall_seconds for c in span.children)
        spot = merged.setdefault(path, Hotspot(path, 0, 0.0, 0.0))
        spot.spans += 1
        spot.self_wall_seconds += max(0.0, span.wall_seconds - child_wall)
        spot.wall_seconds += span.wall_seconds
        for child in span.children:
            visit(child, path)

    for span in trace.spans:
        visit(span, "")
    ranked = sorted(
        merged.values(), key=lambda h: h.self_wall_seconds, reverse=True
    )
    return ranked[: max(0, n)]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_summary(summary: TraceSummary, fmt: str = "plain") -> str:
    """Table view of a rollup (``fmt``: ``plain`` or ``markdown``)."""
    title = (
        f"{summary.design or '(design?)'} / {summary.router or '(router?)'}"
        f" — wall {summary.wall_seconds:.3f}s, cpu {summary.cpu_seconds:.3f}s"
    )
    columns = ["stage", "spans", "wall_s", "cpu_s", "counters"]
    return _render_rows(summary.rows(), columns, title, fmt, decimals=3)


def render_diff(diff: TraceDiff, fmt: str = "plain") -> str:
    """Table view of a diff, regressions first."""
    title = f"trace diff: {diff.old_label} -> {diff.new_label}"
    rows: list[dict] = []
    for delta in diff.counter_deltas:
        rows.append(
            {
                "kind": "counter",
                "name": delta.name,
                "old": delta.old,
                "new": delta.new,
                "change": f"{delta.delta:+}",
                "verdict": "REGRESSION",
            }
        )
    for timing in diff.timing_deltas:
        rows.append(
            {
                "kind": "wall",
                "name": timing.stage,
                "old": round(timing.old, 3),
                "new": round(timing.new, 3),
                "change": f"{timing.pct:+.1f}%",
                "verdict": "REGRESSION" if timing.regression else "ok",
            }
        )
    if not rows:
        return f"{title}\n(no differences)"
    columns = ["kind", "name", "old", "new", "change", "verdict"]
    return _render_rows(rows, columns, title, fmt, decimals=3)


def render_hotspots(spots: Sequence[Hotspot], fmt: str = "plain") -> str:
    """Table view of :func:`hotspots` output."""
    rows = [
        {
            "path": spot.path,
            "spans": spot.spans,
            "self_s": spot.self_wall_seconds,
            "total_s": spot.wall_seconds,
        }
        for spot in spots
    ]
    columns = ["path", "spans", "self_s", "total_s"]
    return _render_rows(rows, columns, "hotspots (self wall time)", fmt,
                        decimals=3)


def _render_rows(
    rows: list[dict],
    columns: list[str],
    title: str,
    fmt: str,
    decimals: int = 2,
) -> str:
    if fmt == "markdown":
        return _markdown_table(rows, columns, title, decimals)
    if fmt != "plain":
        raise ValueError(f"unknown format {fmt!r} (use 'plain' or 'markdown')")
    return format_table(rows, columns=columns, title=title, decimals=decimals)


def _markdown_table(
    rows: list[dict], columns: list[str], title: str, decimals: int
) -> str:
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{decimals}f}"
        return "" if value is None else str(value)

    lines = [f"**{title}**", ""]
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join(" --- " for _ in columns) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(cell(row.get(c)) for c in columns) + " |"
        )
    return "\n".join(lines)


def _kv_text(mapping: dict[str, Number]) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(mapping.items()))


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_trace_file(path: PathLike, key: Optional[str] = None) -> RunTrace:
    """Load a trace from any of the documents the repo produces.

    Accepts a bare ``repro-trace`` document (``RunTrace.save``), a
    ``repro-report`` document with an embedded trace
    (``repro.io.save_report``), a ``BENCH_*.json`` mapping of
    ``label -> trace`` (``benchmarks/common.py``) — for the latter pass
    ``key`` to pick the label (optional when there is exactly one) —
    or an NDJSON event stream (``.ndjson``), replayed into the trace
    its run finished with.  Any of these may be gzip-compressed
    (``.gz`` suffix); ``trace show/diff/top`` auto-detect through this
    loader.
    """
    name = pathlib.Path(path).name
    if name.endswith((".ndjson", ".ndjson.gz")):
        # Deferred import: stream.py imports nothing from here, but
        # keeping analytics import-light preserves the layering.
        from .stream import read_stream

        return read_stream(path)
    if name.endswith(".gz"):
        import gzip

        with gzip.open(path, "rt", encoding="utf-8") as fh:
            data = json.load(fh)
    else:
        data = json.loads(pathlib.Path(path).read_text())
    fmt = data.get("format") if isinstance(data, dict) else None
    if fmt == "repro-trace":
        return RunTrace.from_dict(data)
    if fmt == "repro-report":
        if "trace" not in data:
            raise ValueError(f"report {path} has no embedded trace")
        return RunTrace.from_dict(data["trace"])
    if isinstance(data, dict) and data and all(
        isinstance(v, dict) and v.get("format") == "repro-trace"
        for v in data.values()
    ):
        if key is None:
            if len(data) == 1:
                key = next(iter(data))
            else:
                raise ValueError(
                    f"{path} holds {sorted(data)}; pick one with key="
                )
        if key not in data:
            raise ValueError(f"no trace {key!r} in {path} ({sorted(data)})")
        return RunTrace.from_dict(data[key])
    raise ValueError(f"{path} is not a trace, report, or BENCH document")


# ----------------------------------------------------------------------
# Perf history (committed benchmark artifacts -> trajectory report)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class PerfHistory:
    """Perf-trajectory rollup of a directory of benchmark artifacts.

    Built by :func:`collect_perf_history` from the committed
    ``BENCH_<circuit>.json`` snapshots (per-router traces),
    ``SPEEDUP_ENGINE_<circuit>.json`` (object vs. array engine walls)
    and ``SPEEDUP_<circuit>.json`` / ``SPEEDUP_PROC_<circuit>.json``
    (serial vs. workers walls — the ``PROC_`` prefix marks
    process-executor runs, and every row records its executor).

    Attributes:
        directory: where the artifacts were collected from.
        bench_rows: one row per circuit x router label with wall/CPU
            seconds, stage walls and the deterministic work counters.
        engine_rows: one row per engine-speedup artifact.
        workers_rows: one row per circuit x router label of a
            workers-speedup artifact.
    """

    directory: str
    bench_rows: list[dict]
    engine_rows: list[dict]
    workers_rows: list[dict]

    @property
    def empty(self) -> bool:
        """Whether no artifact of any kind was found."""
        return not (self.bench_rows or self.engine_rows or self.workers_rows)


#: Deterministic whole-run counters worth tracking over time — the
#: schema registry's history ranking, which fixes the column order of
#: the committed trajectory reports.
_HISTORY_COUNTERS = history_counters()


def collect_perf_history(directory: PathLike) -> PerfHistory:
    """Ingest the benchmark artifacts of ``directory`` into a rollup.

    Files that do not parse as their expected schema are skipped (the
    directory may hold unrelated JSON); artifact sets may be partially
    present — an empty rollup is reported, not an error.
    """
    root = pathlib.Path(directory)
    bench_rows: list[dict] = []
    engine_rows: list[dict] = []
    workers_rows: list[dict] = []

    for path in sorted(root.glob("BENCH_*.json")):
        circuit = path.stem[len("BENCH_"):]
        try:
            data = json.loads(path.read_text())
            traces = {
                label: RunTrace.from_dict(doc)
                for label, doc in sorted(data.items())
            }
        except (ValueError, KeyError, AttributeError):
            continue
        for label, trace in traces.items():
            stages = TraceSummary.from_trace(trace).stages
            counters = trace.aggregate_counters()
            row = {
                "circuit": circuit,
                "router": label,
                "wall_s": round(trace.wall_seconds, 3),
                "cpu_s": round(trace.cpu_seconds, 3),
                "global_s": round(
                    stages["global-route"].wall_seconds
                    if "global-route" in stages else 0.0, 3
                ),
                "detail_s": round(
                    stages["detailed-route"].wall_seconds
                    if "detailed-route" in stages else 0.0, 3
                ),
            }
            for name in _HISTORY_COUNTERS:
                row[name] = counters.get(name, 0)
            bench_rows.append(row)

    for path in sorted(root.glob("SPEEDUP_ENGINE_*.json")):
        try:
            data = json.loads(path.read_text())
            engine_rows.append(
                {
                    "circuit": data["circuit"],
                    "scale": data.get("scale", ""),
                    "object_s": data["object_wall_seconds"],
                    "array_s": data["array_wall_seconds"],
                    "speedup": data["speedup"],
                    "repeats": data.get("repeats", ""),
                }
            )
        except (ValueError, KeyError, TypeError):
            continue

    for path in sorted(root.glob("SPEEDUP_*.json")):
        if path.name.startswith("SPEEDUP_ENGINE_"):
            continue
        circuit = path.stem[len("SPEEDUP_"):]
        if circuit.startswith("PROC_"):
            # Process-executor artifacts carry a PROC_ filename prefix
            # so thread and process rows of the same circuit coexist.
            circuit = circuit[len("PROC_"):]
        try:
            data = json.loads(path.read_text())
            if "serial_wall_seconds" in data:
                # Flat schema: one scaled workers-speedup run
                # (regression.py --scale --workers N).
                entries = {"stitch-aware": data}
                circuit = data.get("circuit", circuit)
            else:
                entries = data
            for label, entry in sorted(entries.items()):
                workers_rows.append(
                    {
                        "circuit": circuit,
                        "router": label,
                        "serial_s": entry["serial_wall_seconds"],
                        "parallel_s": entry["parallel_wall_seconds"],
                        "workers": entry["workers"],
                        "engine": entry.get("engine", ""),
                        "executor": entry.get("executor", "thread"),
                        "speedup": entry["speedup"],
                    }
                )
        except (ValueError, KeyError, TypeError, AttributeError):
            continue

    return PerfHistory(
        directory=str(root),
        bench_rows=bench_rows,
        engine_rows=engine_rows,
        workers_rows=workers_rows,
    )


def render_perf_history(history: PerfHistory, fmt: str = "plain") -> str:
    """Table view of a :class:`PerfHistory` (``plain`` or ``markdown``)."""
    if history.empty:
        return f"no benchmark artifacts under {history.directory}"
    sections: list[str] = []
    if history.bench_rows:
        columns = ["circuit", "router", "wall_s", "cpu_s", "global_s",
                   "detail_s", *_HISTORY_COUNTERS]
        sections.append(
            _render_rows(
                history.bench_rows, columns,
                f"benchmark snapshots ({history.directory})", fmt, decimals=3,
            )
        )
    if history.engine_rows:
        columns = ["circuit", "scale", "object_s", "array_s", "speedup",
                   "repeats"]
        sections.append(
            _render_rows(
                history.engine_rows, columns,
                "engine speedups (object vs array)", fmt, decimals=3,
            )
        )
    if history.workers_rows:
        columns = ["circuit", "router", "serial_s", "parallel_s", "workers",
                   "engine", "executor", "speedup"]
        sections.append(
            _render_rows(
                history.workers_rows, columns,
                "workers speedups (serial vs parallel)", fmt, decimals=3,
            )
        )
    return "\n\n".join(sections)
