"""Hierarchical tracing and metrics for the routing flow.

The paper's evaluation (Tables III–VIII) is entirely per-stage: global
routing overflow per negotiation round, layer-assignment coloring
quality, track-assignment model sizes, detailed-routing rip-up
iterations.  A single end-to-end CPU number cannot show any of that, so
every stage of the framework reports into a :class:`Tracer`:

* **spans** — nested timed sections (wall *and* CPU seconds), one per
  stage / pass / negotiation round;
* **counters** — monotonically accumulated event counts (maze
  expansions, flow augmentations, rip-up victims, ...), attached to
  the innermost open span;
* **gauges** — point-in-time values (overflow after a round, coloring
  cost of a panel), also attached to the innermost open span.

:meth:`Tracer.finish` freezes everything into a :class:`RunTrace`, a
plain-data object with a stable, versioned JSON schema so traces from
different routers (or different commits) are directly diffable.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from contextlib import contextmanager
from collections.abc import Iterator
from typing import Optional, Union

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

Number = Union[int, float]
PathLike = Union[str, pathlib.Path]


@dataclasses.dataclass
class Span:
    """One timed section of a run, possibly containing child spans.

    Attributes:
        name: section label (e.g. ``"global"``, ``"negotiation-round"``).
        started_at: start offset in seconds since the trace began.
        wall_seconds: elapsed wall-clock time of the section.
        cpu_seconds: process CPU time consumed by the section.
        counters: event counts accumulated while this span was the
            innermost open span.
        gauges: point-in-time values recorded in this span.
        children: nested spans, in start order.
    """

    name: str
    started_at: float = 0.0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    counters: dict[str, Number] = dataclasses.field(default_factory=dict)
    gauges: dict[str, Number] = dataclasses.field(default_factory=dict)
    children: list["Span"] = dataclasses.field(default_factory=list)

    def count(self, name: str, delta: Number = 1) -> None:
        """Add ``delta`` to counter ``name`` of this span."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: Number) -> None:
        """Record the point-in-time value ``name`` on this span."""
        self.gauges[name] = value

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree (depth first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        """Plain-dict form (stable JSON schema)."""
        out: dict = {
            "name": self.name,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.gauges:
            out["gauges"] = dict(self.gauges)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            started_at=data.get("started_at", 0.0),
            wall_seconds=data.get("wall_seconds", 0.0),
            cpu_seconds=data.get("cpu_seconds", 0.0),
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )


@dataclasses.dataclass
class RunTrace:
    """Frozen trace of one routing run — the unit of perf comparison.

    Attributes:
        router: label of the flow that produced the trace (e.g.
            ``"StitchAwareRouter"``).
        design: name of the routed design.
        wall_seconds: end-to-end wall time of the traced run.
        cpu_seconds: end-to-end process CPU time of the traced run.
        spans: top-level spans in start order.
        counters: counts recorded outside any span.
        meta: free-form context (scale, config knobs, ...).
    """

    router: str = ""
    design: str = ""
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    spans: list[Span] = dataclasses.field(default_factory=list)
    counters: dict[str, Number] = dataclasses.field(default_factory=dict)
    meta: dict[str, object] = dataclasses.field(default_factory=dict)

    # -- queries -------------------------------------------------------
    def walk(self) -> Iterator[Span]:
        """Every span of the trace, depth first."""
        for span in self.spans:
            yield from span.walk()

    def find(self, name: str) -> Optional[Span]:
        """First span named ``name`` anywhere in the trace."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def aggregate_counters(self) -> dict[str, Number]:
        """All counters summed over the whole trace (spans + orphans)."""
        totals: dict[str, Number] = dict(self.counters)
        for span in self.walk():
            for name, value in span.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def stage_wall_seconds(self) -> dict[str, float]:
        """Wall time per top-level span name (summed over repeats)."""
        out: dict[str, float] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0.0) + span.wall_seconds
        return out

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form with a format/version tag."""
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "router": self.router,
            "design": self.design,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "counters": dict(self.counters),
            "meta": dict(self.meta),
            "spans": [s.to_dict() for s in self.spans],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        if data.get("format") != TRACE_FORMAT:
            raise ValueError(f"not a trace document: {data.get('format')!r}")
        if data.get("version") != TRACE_VERSION:
            raise ValueError(
                f"unsupported trace version {data.get('version')!r}"
            )
        return cls(
            router=data.get("router", ""),
            design=data.get("design", ""),
            wall_seconds=data.get("wall_seconds", 0.0),
            cpu_seconds=data.get("cpu_seconds", 0.0),
            spans=[Span.from_dict(s) for s in data.get("spans", [])],
            counters=dict(data.get("counters", {})),
            meta=dict(data.get("meta", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON text of the trace."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunTrace":
        """Parse a trace from its JSON text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: PathLike) -> None:
        """Write the trace to a JSON file."""
        pathlib.Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: PathLike) -> "RunTrace":
        """Read a trace from a JSON file."""
        return cls.from_json(pathlib.Path(path).read_text())


class Tracer:
    """Collects spans, counters and gauges during one routing run.

    A tracer is always live — recording is a dict update per event, so
    stages never need ``if tracer is not None`` guards; hot loops should
    still count locally and flush once per call.  Use :func:`ensure`
    at API boundaries that accept ``tracer=None``.
    """

    def __init__(self) -> None:
        self._epoch_wall = time.perf_counter()
        self._epoch_cpu = time.process_time()
        self.spans: list[Span] = []
        #: Counters recorded while no span is open.
        self.counters: dict[str, Number] = {}
        self._stack: list[Span] = []

    # -- recording -----------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **gauges: Number) -> Iterator[Span]:
        """Open a nested timed span; extra kwargs become gauges."""
        span = Span(
            name=name,
            started_at=time.perf_counter() - self._epoch_wall,
        )
        for key, value in gauges.items():
            span.gauge(key, value)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)
        start_wall = time.perf_counter()
        start_cpu = time.process_time()
        try:
            yield span
        finally:
            span.wall_seconds = time.perf_counter() - start_wall
            span.cpu_seconds = time.process_time() - start_cpu
            popped = self._stack.pop()
            assert popped is span

    def count(self, name: str, delta: Number = 1) -> None:
        """Add ``delta`` to counter ``name`` of the innermost span."""
        if self._stack:
            self._stack[-1].count(name, delta)
        else:
            self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: Number) -> None:
        """Record gauge ``name`` on the innermost span."""
        if self._stack:
            self._stack[-1].gauge(name, value)
        else:
            self.counters[name] = value

    def progress(self, kind: str, **fields: object) -> None:
        """Report transient progress (per-net commits, task completions).

        Progress events never enter the frozen :class:`RunTrace` — they
        exist for live consumers, so the base tracer discards them.
        :class:`~repro.observe.StreamingTracer` overrides this to emit
        a ``progress`` stream event.  Stages only call it under
        ``RouterConfig(profile="full")``; see ``docs/observability.md``.
        """

    # -- finalization --------------------------------------------------
    def finish(
        self,
        router: str = "",
        design: str = "",
        meta: Optional[dict[str, object]] = None,
    ) -> RunTrace:
        """Freeze the recorded data into a :class:`RunTrace`.

        Open spans are not closed — finish after all spans exit.
        """
        if self._stack:
            raise RuntimeError(
                f"cannot finish with open span {self._stack[-1].name!r}"
            )
        return RunTrace(
            router=router,
            design=design,
            wall_seconds=time.perf_counter() - self._epoch_wall,
            cpu_seconds=time.process_time() - self._epoch_cpu,
            spans=list(self.spans),
            counters=dict(self.counters),
            meta=dict(meta or {}),
        )


def ensure(tracer: Optional[Tracer]) -> Tracer:
    """The given tracer, or a fresh one when ``None``.

    Stage entry points accept ``tracer=None`` for callers that do not
    care about observability; the throwaway tracer keeps the stage code
    branch-free.
    """
    return tracer if tracer is not None else Tracer()
