"""Structured-logging bridge for the tracer (stdlib ``logging`` only).

The tracer freezes a run into a :class:`~repro.observe.RunTrace` for
post-hoc analysis; this module mirrors the same events *live* into
named stdlib loggers so long runs can be watched as they happen —
``python -m repro -v route ...`` for stage progress, ``-vv`` for every
span, round, and counter flush.

Each span logs under ``repro.trace.<span-name>`` with the full span
path, its gauges (round numbers, queue sizes, net counts) and, on
close, its wall/CPU seconds and flushed counters.  Framework and stage
spans (depth < 2) and the per-round progress spans log at ``INFO``;
everything deeper logs at ``DEBUG``.  No handler is installed by the
bridge itself — either call :func:`configure_logging` (what the CLI's
``-v/-vv`` flags do) or attach your own handlers to ``repro.trace``.
"""

from __future__ import annotations

import logging
import sys
import weakref
from contextlib import contextmanager
from collections.abc import Iterator
from typing import Optional, TextIO

from .tracer import Number, Span, Tracer

#: Root logger name of the bridge; span loggers are children of it.
TRACE_LOGGER_NAME = "repro.trace"

#: Handlers installed by :func:`configure_logging`, tracked here so a
#: later call can replace them without touching handlers the user
#: attached.  Weak references: a handler removed elsewhere just drops
#: out of the set.
_installed_handlers: "weakref.WeakSet[logging.Handler]" = weakref.WeakSet()

#: Span names that report per-round progress — always worth INFO even
#: though they sit deep in the tree.
PROGRESS_SPANS = frozenset({"negotiation-round", "ripup-round", "level"})

#: Spans deeper than this log at DEBUG (unless in PROGRESS_SPANS).
INFO_DEPTH = 2


class LoggingTracer(Tracer):
    """A :class:`Tracer` that also mirrors events into stdlib logging.

    Drop-in replacement anywhere a tracer is accepted: the frozen
    :class:`~repro.observe.RunTrace` is identical, but span opens and
    closes, counter flushes, and round progress additionally emit log
    records with stage context.

    Args:
        logger: parent logger; defaults to ``repro.trace``.
    """

    def __init__(self, logger: Optional[logging.Logger] = None) -> None:
        super().__init__()
        self._logger = logger or logging.getLogger(TRACE_LOGGER_NAME)

    # -- helpers -------------------------------------------------------
    def _path(self, name: Optional[str] = None) -> str:
        parts = [span.name for span in self._stack]
        if name is not None:
            parts.append(name)
        return "/".join(parts) or "(root)"

    def _level(self, name: str, depth: int) -> int:
        if depth < INFO_DEPTH or name in PROGRESS_SPANS:
            return logging.INFO
        return logging.DEBUG

    # -- mirrored recording --------------------------------------------
    @contextmanager
    def span(self, name: str, **gauges: Number) -> Iterator[Span]:
        depth = len(self._stack)
        level = self._level(name, depth)
        logger = self._logger.getChild(name)
        path = self._path(name)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug("open %s%s", path, _kv(" ", gauges))
        with super().span(name, **gauges) as span:
            try:
                yield span
            finally:
                if logger.isEnabledFor(level):
                    logger.log(
                        level,
                        "%s wall=%.3fs cpu=%.3fs%s%s",
                        path,
                        span.wall_seconds,
                        span.cpu_seconds,
                        _kv(" ", span.gauges),
                        _kv(" counters: ", span.counters),
                    )

    def count(self, name: str, delta: Number = 1) -> None:
        super().count(name, delta)
        # Individual increments are too hot to log; per-call flushes
        # from stage code (delta > 1) are the interesting ones.
        if delta != 1 and self._logger.isEnabledFor(logging.DEBUG):
            self._logger.getChild("counter").debug(
                "%s %s += %s", self._path(), name, delta
            )

    def gauge(self, name: str, value: Number) -> None:
        super().gauge(name, value)
        if self._logger.isEnabledFor(logging.DEBUG):
            self._logger.getChild("gauge").debug(
                "%s %s = %s", self._path(), name, value
            )


def _kv(prefix: str, mapping: dict) -> str:
    if not mapping:
        return ""
    body = " ".join(f"{k}={v}" for k, v in sorted(mapping.items()))
    return f"{prefix}{body}"


def configure_logging(
    verbosity: int, stream: Optional[TextIO] = None
) -> Optional[logging.Handler]:
    """Install a stderr handler for the bridge (CLI ``-v/-vv``).

    ``verbosity`` 0 is a no-op; 1 shows stage and round progress
    (INFO); 2 and above shows every span, counter flush, and gauge
    (DEBUG).  Returns the installed handler (so tests can remove it),
    or ``None`` when verbosity is 0.  Calling it again replaces the
    previous handler instead of stacking duplicates.
    """
    if verbosity <= 0:
        return None
    logger = logging.getLogger(TRACE_LOGGER_NAME)
    for handler in list(logger.handlers):
        if handler in _installed_handlers:
            logger.removeHandler(handler)
            _installed_handlers.discard(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname).1s %(name)s: %(message)s")
    )
    _installed_handlers.add(handler)
    logger.addHandler(handler)
    logger.setLevel(logging.INFO if verbosity == 1 else logging.DEBUG)
    logger.propagate = False
    return handler
