"""Canonical schema registry for every observability name.

Every counter, gauge, span, and progress kind the router can emit is
declared here, once, with its owner stage, backend coverage, and
category.  The registry is the single source of truth that used to be
scattered across ad-hoc lists: the regression gate's ``parallel_*`` /
``perf_*`` / ``stream_*`` strip tuples, the perf-history counter
columns, and the watch monitor's notable-counter picks all derive
from it now, and the static parity analyzer's PAR005 rule fails any
``src`` emission whose name is missing here.

Identity is ``(kind, name)`` — names may repeat across kinds (the
multilevel scheme emits a ``level`` *span* carrying a ``level``
*gauge*) but never within one.  Backend coverage is a set of tags
over two axes, engine (``object`` / ``array``) and executor
(``serial`` / ``thread`` / ``process``): a metric tagged with a
backend *may* appear under it, and a metric missing one *never* does
(``parallel_ipc_publishes`` carries no ``serial`` or ``thread`` tag —
only the process pool publishes over IPC).  The live-run completeness
test (``tests/observe/test_schema.py``) routes a real circuit under
five configurations and holds every emitted name to its declared
coverage.

Categories partition the vocabulary by contract: ``routing`` metrics
are the deterministic ones every backend must reproduce exactly,
while ``scheduling`` / ``profiling`` / ``streaming`` bookkeeping is
backend- or mode-specific and strippable (see
:func:`strip_prefixes`).  Each strippable category owns a name prefix
and the module refuses to import if any registration strays across
that line — the prefix-based scrub in ``benchmarks/regression.py``
and the category-based view here can never disagree.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

#: The four observability primitives a tracer records.
KINDS = ("counter", "gauge", "span", "progress")

#: Engine-axis backend tags (``RouterConfig.engine``).
ENGINE_BACKENDS = frozenset({"object", "array"})

#: Executor-axis backend tags (``RouterConfig.workers`` / ``executor``).
EXECUTOR_BACKENDS = frozenset({"serial", "thread", "process"})

#: Full coverage: emitted under every engine and executor.
ALL_BACKENDS = ENGINE_BACKENDS | EXECUTOR_BACKENDS

#: Coverage of workers>1 bookkeeping: both engines, no serial runs.
PARALLEL_BACKENDS = ENGINE_BACKENDS | frozenset({"thread", "process"})

#: Strippable categories and the name prefix each one owns.  The
#: regression gate scrubs by prefix; the registry enforces at import
#: time that prefix membership and category membership coincide.
CATEGORY_PREFIXES: dict[str, tuple[str, ...]] = {
    "scheduling": ("parallel_",),
    "profiling": ("perf_",),
    "streaming": ("stream_",),
    "sanitize": ("sanitize_",),
}


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """One registered observability name.

    Attributes:
        name: the emitted name, exactly as it appears in a trace.
        kind: one of :data:`KINDS`.
        stages: owner stages (``global`` / ``detailed`` / ``assign`` /
            ``multilevel`` / ``flow`` / ``observe``).
        backends: tags under which the name may be emitted (subset of
            :data:`ALL_BACKENDS`).
        category: contract family — ``routing`` names are part of the
            deterministic cross-backend surface; prefix-owning
            categories (:data:`CATEGORY_PREFIXES`) are strippable.
        history: 0 for untracked, else the 1-based column position in
            the perf-history rollup (:func:`history_counters`).
        description: one-line meaning, for docs and ``trace show``.
    """

    name: str
    kind: str
    stages: frozenset[str]
    backends: frozenset[str]
    category: str
    history: int = 0
    description: str = ""


_REGISTRY: dict[tuple[str, str], MetricSpec] = {}


def _register(
    name: str,
    kind: str,
    stages: frozenset[str],
    backends: frozenset[str],
    category: str,
    description: str,
    history: int = 0,
) -> None:
    key = (kind, name)
    if kind not in KINDS:
        raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
    if key in _REGISTRY:
        raise ValueError(f"duplicate registration: {kind} {name!r}")
    if not backends <= ALL_BACKENDS:
        raise ValueError(f"unknown backend tag on {kind} {name!r}")
    _REGISTRY[key] = MetricSpec(
        name=name,
        kind=kind,
        stages=frozenset(stages),
        backends=frozenset(backends),
        category=category,
        history=history,
        description=description,
    )


_GLOBAL = frozenset({"global"})
_DETAILED = frozenset({"detailed"})
_BOTH_ROUTE = frozenset({"global", "detailed"})
_ASSIGN = frozenset({"assign"})
_MULTILEVEL = frozenset({"multilevel"})
_FLOW = frozenset({"flow"})
_OBSERVE = frozenset({"observe"})

# -- routing counters: the deterministic cross-backend surface --------
_register(
    "maze_expansions", "counter", _GLOBAL, ALL_BACKENDS, "routing",
    "Tiles popped by the negotiated-congestion maze search.",
    history=1,
)
_register(
    "nets_routed", "counter", _GLOBAL, ALL_BACKENDS, "routing",
    "Nets the global stage connected.",
)
_register(
    "ripup_victims", "counter", _GLOBAL, ALL_BACKENDS, "routing",
    "Nets torn up by global negotiation rounds.",
)
_register(
    "failed_nets", "counter", _BOTH_ROUTE, ALL_BACKENDS, "routing",
    "Nets left unrouted when a stage gave up.",
    history=5,
)
_register(
    "nets_attempted", "counter", _DETAILED, ALL_BACKENDS, "routing",
    "Nets the detailed stage tried to realize.",
)
_register(
    "first_pass_failed", "counter", _DETAILED, ALL_BACKENDS, "routing",
    "Nets whose first detailed pass missed and queued for rip-up.",
)
_register(
    "stitch_cost_evaluations", "counter", _DETAILED, ALL_BACKENDS,
    "routing",
    "Stitch-aware cost terms evaluated during detailed search.",
)
_register(
    "ripup_rounds", "counter", _DETAILED, ALL_BACKENDS, "routing",
    "Detailed rip-up-and-reroute rounds executed.",
    history=4,
)
_register(
    "reroutes", "counter", _DETAILED, ALL_BACKENDS, "routing",
    "Nets rerouted inside detailed rip-up rounds.",
)
_register(
    "astar_searches", "counter", _DETAILED, ALL_BACKENDS, "routing",
    "Windowed A* searches launched by the detailed stage.",
    history=2,
)
_register(
    "astar_expansions", "counter", _DETAILED, ALL_BACKENDS, "routing",
    "Grid nodes expanded across all detailed A* searches.",
    history=3,
)
_register(
    "panels", "counter", _ASSIGN, ALL_BACKENDS, "routing",
    "Track-assignment panels processed.",
)
_register(
    "conflict_vertices", "counter", _ASSIGN, ALL_BACKENDS, "routing",
    "Vertices of the layer-assignment conflict graph.",
)
_register(
    "conflict_edges", "counter", _ASSIGN, ALL_BACKENDS, "routing",
    "Edges of the layer-assignment conflict graph.",
)
_register(
    "flow_augmentations", "counter", _ASSIGN, ALL_BACKENDS, "routing",
    "Augmenting paths pushed by the flow-based coloring.",
)
_register(
    "flow_rounds", "counter", _ASSIGN, ALL_BACKENDS, "routing",
    "Rounds of the flow-based coloring loop.",
)
_register(
    "flow_nodes", "counter", _ASSIGN, ALL_BACKENDS, "routing",
    "Nodes of the min-cost-flow network built by the interval "
    "k-coloring (accumulated per panel; not yet forwarded to spans).",
)
_register(
    "failed_segments", "counter", _ASSIGN, ALL_BACKENDS, "routing",
    "Trunk segments track assignment could not place.",
)
_register(
    "bad_ends", "counter", _ASSIGN, ALL_BACKENDS, "routing",
    "Segment endpoints left off-track after assignment.",
)
_register(
    "track_graph_nodes", "counter", _ASSIGN, ALL_BACKENDS, "routing",
    "Nodes of the track-assignment interval graph.",
)
_register(
    "track_baseline_segments", "counter", _ASSIGN, ALL_BACKENDS,
    "routing",
    "Segments placed by the greedy track-assignment baseline.",
)
_register(
    "track_ilp_variables", "counter", _ASSIGN, ALL_BACKENDS, "routing",
    "Decision variables of the track-assignment ILP.",
)

# -- audit counters (repro audit / --audit flow) ----------------------
_register(
    "audit_nets_checked", "counter", _FLOW, ALL_BACKENDS, "audit",
    "Nets re-verified by the independent solution audit.",
)
_register(
    "audit_findings", "counter", _FLOW, ALL_BACKENDS, "audit",
    "Audit rule violations found.",
)
_register(
    "audit_drift", "counter", _FLOW, ALL_BACKENDS, "audit",
    "Reported counters that disagreed with audit recomputation.",
)

# -- sanitize counters (RouterConfig.sanitize) ------------------------
_register(
    "sanitize_violations", "counter", _BOTH_ROUTE, ALL_BACKENDS,
    "sanitize",
    "Shared-state footprint violations the sanitizer flagged.",
)
_register(
    "sanitize_cells_checked", "counter", _DETAILED, ALL_BACKENDS,
    "sanitize",
    "Grid cells swept by the detailed-stage sanitizer.",
)
_register(
    "sanitize_nets_checked", "counter", _BOTH_ROUTE, ALL_BACKENDS,
    "sanitize",
    "Nets swept by the overlay sanitizer.",
)
_register(
    "sanitize_nodes_checked", "counter", _GLOBAL, ALL_BACKENDS,
    "sanitize",
    "Graph nodes swept by the global-stage sanitizer.",
)

# -- scheduling bookkeeping (workers > 1; no serial counterpart) ------
_register(
    "parallel_tasks", "counter", _BOTH_ROUTE, PARALLEL_BACKENDS,
    "scheduling",
    "Speculative tasks submitted to the worker pool.",
)
_register(
    "parallel_batches", "counter", _BOTH_ROUTE, PARALLEL_BACKENDS,
    "scheduling",
    "Conflict-free batches executed by the pool.",
)
_register(
    "parallel_conflicts", "counter", _BOTH_ROUTE, PARALLEL_BACKENDS,
    "scheduling",
    "Speculative results discarded and redone serially.",
)
_register(
    "parallel_ipc_publishes", "counter", _BOTH_ROUTE,
    ENGINE_BACKENDS | frozenset({"process"}), "scheduling",
    "Shared-memory state publications by the process pool.",
)
_register(
    "parallel_ipc_publish_bytes", "counter", _BOTH_ROUTE,
    ENGINE_BACKENDS | frozenset({"process"}), "scheduling",
    "Bytes shipped over shared memory by the process pool.",
)
_register(
    "worker_utilization", "gauge", _BOTH_ROUTE, PARALLEL_BACKENDS,
    "scheduling",
    "Busy fraction of the worker pool over a stage.",
)
_register(
    "parallel_batches_planned", "gauge",
    _BOTH_ROUTE | _MULTILEVEL, PARALLEL_BACKENDS, "scheduling",
    "Batches the conflict-aware planner scheduled.",
)
_register(
    "parallel_max_batch_width", "gauge",
    _BOTH_ROUTE | _MULTILEVEL, PARALLEL_BACKENDS, "scheduling",
    "Widest planned batch (peak speculative parallelism).",
)
_register(
    "parallel_mean_batch_width", "gauge",
    _BOTH_ROUTE | _MULTILEVEL, PARALLEL_BACKENDS, "scheduling",
    "Mean planned batch width.",
)

# -- profiling counters (RouterConfig.profile) ------------------------
_register(
    "perf_maze_heap_pushes", "counter", _GLOBAL, ALL_BACKENDS,
    "profiling",
    "Heap pushes by the global maze search (profile mode).",
)
_register(
    "perf_maze_heap_pops", "counter", _GLOBAL, ALL_BACKENDS,
    "profiling",
    "Heap pops by the global maze search (profile mode).",
)
_register(
    "perf_cache_refreshes", "counter", _GLOBAL,
    frozenset({"array"}) | EXECUTOR_BACKENDS, "profiling",
    "Full cost-cache rebuilds by the array global graph.",
)
_register(
    "perf_cache_updates", "counter", _GLOBAL,
    frozenset({"array"}) | EXECUTOR_BACKENDS, "profiling",
    "Incremental cost-cache updates by the array global graph.",
)
_register(
    "perf_snapshot_clones", "counter", _GLOBAL, PARALLEL_BACKENDS,
    "profiling",
    "Demand snapshots cloned for speculative batches.",
)
_register(
    "perf_heap_pushes", "counter", _DETAILED, ALL_BACKENDS,
    "profiling",
    "Heap pushes by detailed A* (profile mode).",
)
_register(
    "perf_heap_pops", "counter", _DETAILED, ALL_BACKENDS, "profiling",
    "Heap pops by detailed A* (profile mode).",
)
_register(
    "perf_overlay_commits", "counter", _DETAILED, ALL_BACKENDS,
    "profiling",
    "Overlay deltas committed back to the base grid.",
)
_register(
    "perf_overlay_read_nodes", "counter", _DETAILED, ALL_BACKENDS,
    "profiling",
    "Nodes read through overlay views.",
)
_register(
    "perf_overlay_write_nodes", "counter", _DETAILED, ALL_BACKENDS,
    "profiling",
    "Nodes written into overlay deltas.",
)
_register(
    "perf_ripup_net_visits", "counter", _DETAILED, ALL_BACKENDS,
    "profiling",
    "Net visits across detailed rip-up rounds (profile mode).",
)

# -- streaming bookkeeping (StreamingTracer) --------------------------
_register(
    "stream_events", "counter", _OBSERVE, ALL_BACKENDS, "streaming",
    "NDJSON events emitted by the streaming tracer.",
)
_register(
    "stream_heartbeats", "counter", _OBSERVE, ALL_BACKENDS,
    "streaming",
    "Heartbeat events emitted between spans.",
)

# -- routing gauges ---------------------------------------------------
_register(
    "edge_overflow", "gauge", _GLOBAL, ALL_BACKENDS, "routing",
    "Total edge-capacity overflow after a negotiation round.",
)
_register(
    "vertex_overflow", "gauge", _GLOBAL, ALL_BACKENDS, "routing",
    "Total vertex-capacity overflow after a negotiation round.",
)
_register(
    "conflict_weight", "gauge", _ASSIGN, ALL_BACKENDS, "routing",
    "Total weight of the layer-assignment conflict graph.",
)
_register(
    "coloring_cost", "gauge", _ASSIGN, ALL_BACKENDS, "routing",
    "Objective value of the chosen layer coloring.",
)
_register(
    "max_cut_weight", "gauge", _ASSIGN, ALL_BACKENDS, "routing",
    "Best cut weight seen by the coloring search.",
)
_register(
    "column_problems", "gauge", _ASSIGN, ALL_BACKENDS, "routing",
    "Column panel problems solved by track assignment.",
)
_register(
    "row_problems", "gauge", _ASSIGN, ALL_BACKENDS, "routing",
    "Row panel problems solved by track assignment.",
)
_register(
    "method", "gauge", _ASSIGN, ALL_BACKENDS, "routing",
    "Track-assignment method actually used (string-valued; recorded "
    "as a span attribute on track-assign).",
)

# -- span-attribute gauges (keyword arguments to tracer.span) ---------
_register(
    "nets", "gauge", _DETAILED | _MULTILEVEL, ALL_BACKENDS, "routing",
    "Net count attribute on detailed-route and level spans.",
)
_register(
    "levels", "gauge", _MULTILEVEL, ALL_BACKENDS, "routing",
    "Level count attribute on the levelize span.",
)
_register(
    "level", "gauge", _MULTILEVEL, ALL_BACKENDS, "routing",
    "Level index attribute on level spans.",
)
_register(
    "round", "gauge", _BOTH_ROUTE, ALL_BACKENDS, "routing",
    "Round index attribute on negotiation-round / ripup-round spans.",
)
_register(
    "queued", "gauge", _DETAILED, ALL_BACKENDS, "routing",
    "Rip-up queue depth attribute on ripup-round spans.",
)

# -- spans ------------------------------------------------------------
for _name, _stages, _desc in (
    ("global-route", _GLOBAL, "Whole global-routing stage."),
    ("graph-build", _GLOBAL, "Tile-graph construction."),
    ("initial-pass", _GLOBAL, "First uncongested global pass."),
    ("negotiation-round", _GLOBAL, "One negotiated-congestion round."),
    ("detailed-route", _DETAILED, "Whole detailed-routing stage."),
    ("grid-build", _DETAILED, "Detailed grid construction."),
    ("trunks", _DETAILED, "Trunk realization from track assignment."),
    ("first-pass", _DETAILED, "First detailed pass over all nets."),
    ("ripup-round", _DETAILED, "One detailed rip-up round."),
    (
        "short-polygon-repair", _DETAILED,
        "Post-pass short-polygon stitch repair.",
    ),
    ("layer-assign", _ASSIGN, "Layer-assignment stage."),
    ("track-assign", _ASSIGN, "Track-assignment stage."),
    ("levelize", _MULTILEVEL, "Net-to-level scheduling."),
    ("level", _MULTILEVEL, "One multilevel scheduling level."),
    ("pass1", _MULTILEVEL, "Multilevel pass 1 (global)."),
    ("assign", _MULTILEVEL, "Multilevel assignment pass."),
    ("pass2", _MULTILEVEL, "Multilevel pass 2 (detailed)."),
    ("audit", _FLOW, "Independent solution audit."),
):
    _register(_name, "span", _stages, ALL_BACKENDS, "routing", _desc)

# -- progress kinds ---------------------------------------------------
_register(
    "net", "progress", _BOTH_ROUTE, ALL_BACKENDS, "routing",
    "Per-net completion event (fields: stage, net, routed).",
)
_register(
    "task", "progress", _BOTH_ROUTE, PARALLEL_BACKENDS, "scheduling",
    "Per-task pool fan-in event under profile=full "
    "(fields: stage, index, busy_seconds).",
)


def _check_prefix_discipline() -> None:
    """Categories and their owned prefixes must coincide exactly."""
    for spec in _REGISTRY.values():
        if spec.kind not in ("counter", "gauge"):
            continue
        for category, prefixes in CATEGORY_PREFIXES.items():
            owns_name = spec.name.startswith(prefixes)
            in_category = spec.category == category
            # worker_utilization is scheduling bookkeeping without the
            # parallel_ prefix; it predates the registry and renaming
            # would break committed trace baselines.  It is the single
            # allowed exception: category without prefix is tolerated,
            # prefix without category never is.
            if owns_name and not in_category:
                raise ValueError(
                    f"{spec.kind} {spec.name!r} carries the "
                    f"{category} prefix but is registered as "
                    f"{spec.category!r}"
                )


_check_prefix_discipline()


def lookup(kind: str, name: str) -> Optional[MetricSpec]:
    """The spec registered for ``(kind, name)``, or ``None``."""
    return _REGISTRY.get((kind, name))


def is_registered(kind: str, name: str) -> bool:
    """Whether ``(kind, name)`` is a declared observability name."""
    return (kind, name) in _REGISTRY


def metric_specs(
    kind: Optional[str] = None,
    *,
    stage: Optional[str] = None,
    backend: Optional[str] = None,
    category: Optional[str] = None,
) -> tuple[MetricSpec, ...]:
    """Registered specs, filtered; registration order preserved."""
    out = []
    for spec in _REGISTRY.values():
        if kind is not None and spec.kind != kind:
            continue
        if stage is not None and stage not in spec.stages:
            continue
        if backend is not None and backend not in spec.backends:
            continue
        if category is not None and spec.category != category:
            continue
        out.append(spec)
    return tuple(out)


def metric_names(
    kind: Optional[str] = None,
    *,
    stage: Optional[str] = None,
    backend: Optional[str] = None,
    category: Optional[str] = None,
) -> tuple[str, ...]:
    """Registered names, filtered like :func:`metric_specs`."""
    return tuple(
        spec.name
        for spec in metric_specs(
            kind, stage=stage, backend=backend, category=category
        )
    )


def strip_prefixes(*categories: str) -> tuple[str, ...]:
    """The name prefixes owned by strippable ``categories``.

    This is what the regression gate feeds to its trace scrubber:
    ``strip_prefixes("scheduling")`` for parallel runs,
    ``strip_prefixes("profiling", "streaming")`` for profiled ones.
    Unknown categories raise so a typo cannot silently strip nothing.
    """
    out: list[str] = []
    for category in categories:
        try:
            out.extend(CATEGORY_PREFIXES[category])
        except KeyError:
            raise ValueError(
                f"no strippable category {category!r}; known: "
                f"{sorted(CATEGORY_PREFIXES)}"
            ) from None
    return tuple(out)


def history_counters() -> tuple[str, ...]:
    """Counters tracked over time by the perf-history rollup.

    Ordered by their declared ``history`` rank — the column order of
    the committed trajectory reports, so it must stay stable.
    """
    ranked = [
        spec
        for spec in _REGISTRY.values()
        if spec.kind == "counter" and spec.history
    ]
    ranked.sort(key=lambda spec: spec.history)
    return tuple(spec.name for spec in ranked)


__all__ = [
    "ALL_BACKENDS",
    "CATEGORY_PREFIXES",
    "ENGINE_BACKENDS",
    "EXECUTOR_BACKENDS",
    "KINDS",
    "MetricSpec",
    "PARALLEL_BACKENDS",
    "history_counters",
    "is_registered",
    "lookup",
    "metric_names",
    "metric_specs",
    "strip_prefixes",
]
