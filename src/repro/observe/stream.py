"""Live NDJSON trace streaming and replay (``repro.observe.stream``).

The tracer freezes a run into a :class:`~repro.observe.RunTrace` only
*after* the run completes; on 10-100x-scale instances that makes long
runs black boxes until they finish.  This module streams the same
events incrementally: a :class:`StreamingTracer` is a drop-in
:class:`~repro.observe.Tracer` that additionally appends one JSON
object per line (NDJSON) to a file or pipe sink *while the run
executes* — span opens and closes, counter flushes, gauges, per-net
progress, and periodic heartbeats carrying wall-clock and peak-RSS
gauges.

The schema is versioned (:data:`STREAM_FORMAT` / :data:`STREAM_VERSION`)
and append-only: every line is self-contained, so a consumer may tail
the file mid-run (``repro watch``) and a crashed run leaves a valid
prefix.  :func:`read_stream` replays a complete stream back into a
:class:`RunTrace` that is **byte-identical** to the trace the run's own
``finish()`` returned — span-close events carry the authoritative final
counter/gauge dicts and the exact wall/CPU floats, and
``RunTrace.to_json`` sorts keys, so reassembly order cannot perturb the
serialized document.

Event vocabulary (the ``ev`` field):

* ``open`` — stream header: format and version tags.
* ``span-open`` — ``id``, ``parent`` (id or ``None``), ``name``,
  ``started_at``, opening ``gauges``.
* ``span-close`` — ``id``, final ``wall_seconds`` / ``cpu_seconds`` and
  the span's complete final ``counters`` / ``gauges`` dicts.
* ``count`` — a counter *flush* (``delta != 1``; unit increments are
  too hot to stream, the span-close totals cover them).
* ``gauge`` — a point-in-time value on the innermost span.
* ``progress`` — free-form per-net / per-task progress
  (:meth:`StreamingTracer.progress`; emitted by the routers under
  ``RouterConfig(profile="full")``).
* ``heartbeat`` — periodic liveness: wall offset, peak RSS (KiB),
  events emitted so far, open-span depth.
* ``finish`` — the ``RunTrace`` root fields (router, design, wall,
  CPU, orphan counters, meta); terminates the stream.

Thread safety: all emission funnels through one lock.  The routing
stages call the tracer from the main thread only (workers accumulate
local stats that are merged in canonical net order — see
``docs/parallelism.md``), and the :class:`~repro.parallel.BatchExecutor`
fans per-task progress events in on the calling thread in submission
order, so streams are canonically ordered; the lock makes stray
worker-side ``progress()`` calls safe as well.
"""

from __future__ import annotations

import gzip
import io
import json
import pathlib
import time
from contextlib import contextmanager
from collections.abc import Iterator
from typing import IO, Any, Optional, Union

from .tracer import (
    TRACE_FORMAT,
    TRACE_VERSION,
    Number,
    PathLike,
    RunTrace,
    Span,
    Tracer,
)

#: Format tag of the first line of every stream.
STREAM_FORMAT = "repro-trace-stream"
#: Schema version; bump on any incompatible event-shape change.
STREAM_VERSION = 1

#: File suffixes recognized as NDJSON event streams.
STREAM_SUFFIXES = (".ndjson", ".ndjson.gz")

Event = dict[str, Any]
Sink = Union[PathLike, IO[str]]


def _peak_rss_kib() -> int:
    """Peak resident set size of this process in KiB (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    import sys

    if sys.platform == "darwin":  # pragma: no cover - platform specific
        rss //= 1024
    return int(rss)


def open_stream_text(path: PathLike, mode: str = "rt") -> IO[str]:
    """Open a stream file for text I/O, transparently gunzipping."""
    p = pathlib.Path(path)
    if p.name.endswith(".gz"):
        return gzip.open(p, mode, encoding="utf-8")  # type: ignore[return-value]
    return open(p, mode.replace("t", "") + "t", encoding="utf-8")


class StreamingTracer(Tracer):
    """A :class:`Tracer` that also streams events to an NDJSON sink.

    Drop-in replacement anywhere a tracer is accepted: the frozen
    :class:`RunTrace` is byte-identical to a plain tracer's except for
    the ``stream_*`` bookkeeping counters recorded at finish (strip
    them before diffing against non-streamed baselines — the
    regression gate and the differential suites already do).

    Args:
        sink: target path (``.gz`` suffix writes gzip) or an open
            text-mode file object.  Paths are opened for append so a
            supervisor may pre-create the file or point at a pipe.
        heartbeat_interval: minimum seconds between heartbeat events;
            heartbeats piggyback on event emission (no timer thread),
            so their cadence is bounded below by event traffic.
    """

    def __init__(
        self, sink: Sink, heartbeat_interval: float = 1.0
    ) -> None:
        super().__init__()
        if isinstance(sink, (str, pathlib.Path)):
            self._sink: IO[str] = open_stream_text(sink, "at")
            self._owns_sink = True
        else:
            self._sink = sink
            self._owns_sink = False
        self._heartbeat_interval = heartbeat_interval
        self._last_heartbeat = time.perf_counter()
        import threading

        self._emit_lock = threading.Lock()
        self._next_id = 0
        self._id_stack: list[int] = []
        self.events_emitted = 0
        self.heartbeats_emitted = 0
        self._closed = False
        self._emit(
            {
                "ev": "open",
                "format": STREAM_FORMAT,
                "version": STREAM_VERSION,
                "trace_format": TRACE_FORMAT,
                "trace_version": TRACE_VERSION,
            },
            heartbeat=False,
        )

    # -- emission ------------------------------------------------------
    def _emit(self, event: Event, heartbeat: bool = True) -> None:
        """Write one event line (and maybe a heartbeat) to the sink."""
        if self._closed:
            return
        with self._emit_lock:
            self._sink.write(
                json.dumps(event, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._sink.flush()
            self.events_emitted += 1
            now = time.perf_counter()
            if (
                heartbeat
                and now - self._last_heartbeat >= self._heartbeat_interval
            ):
                self._last_heartbeat = now
                beat = {
                    "ev": "heartbeat",
                    "wall_seconds": now - self._epoch_wall,
                    "rss_kib": _peak_rss_kib(),
                    "events": self.events_emitted,
                    "open_spans": len(self._id_stack),
                }
                self._sink.write(
                    json.dumps(beat, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
                self._sink.flush()
                self.events_emitted += 1
                self.heartbeats_emitted += 1

    # -- mirrored recording --------------------------------------------
    @contextmanager
    def span(self, name: str, **gauges: Number) -> Iterator[Span]:
        sid = self._next_id
        self._next_id += 1
        parent = self._id_stack[-1] if self._id_stack else None
        span: Optional[Span] = None
        try:
            with super().span(name, **gauges) as span:
                event: Event = {
                    "ev": "span-open",
                    "id": sid,
                    "parent": parent,
                    "name": name,
                    "started_at": span.started_at,
                }
                if span.gauges:
                    event["gauges"] = dict(span.gauges)
                self._emit(event)
                self._id_stack.append(sid)
                try:
                    yield span
                finally:
                    self._id_stack.pop()
        finally:
            # Emitted after the base tracer's exit hook so the final
            # wall/cpu floats (and any counters flushed in the span's
            # own finally blocks) are the exact frozen values — this is
            # what makes replay byte-identical.
            if span is not None:
                close: Event = {
                    "ev": "span-close",
                    "id": sid,
                    "wall_seconds": span.wall_seconds,
                    "cpu_seconds": span.cpu_seconds,
                }
                if span.counters:
                    close["counters"] = dict(span.counters)
                if span.gauges:
                    close["gauges"] = dict(span.gauges)
                self._emit(close)

    def count(self, name: str, delta: Number = 1) -> None:
        super().count(name, delta)
        # Unit increments are too hot to stream; per-call flushes from
        # stage code (delta != 1) mark real per-stage totals.
        if delta != 1:
            self._emit(
                {
                    "ev": "count",
                    "span": self._id_stack[-1] if self._id_stack else None,
                    "name": name,
                    "delta": delta,
                }
            )

    def gauge(self, name: str, value: Number) -> None:
        super().gauge(name, value)
        self._emit(
            {
                "ev": "gauge",
                "span": self._id_stack[-1] if self._id_stack else None,
                "name": name,
                "value": value,
            }
        )

    def progress(self, kind: str, **fields: object) -> None:
        """Stream a free-form progress event (never enters the trace)."""
        event: Event = {"ev": "progress", "kind": kind}
        event.update(fields)
        self._emit(event)

    # -- finalization --------------------------------------------------
    def finish(
        self,
        router: str = "",
        design: str = "",
        meta: Optional[dict[str, object]] = None,
    ) -> RunTrace:
        """Freeze the trace, emit the ``finish`` event, close the sink.

        The ``stream_events`` / ``stream_heartbeats`` bookkeeping
        counters are recorded as orphan counters *before* freezing, so
        the finish event and the returned trace agree exactly.
        """
        self.counters["stream_events"] = self.events_emitted
        self.counters["stream_heartbeats"] = self.heartbeats_emitted
        trace = super().finish(router=router, design=design, meta=meta)
        self._emit(
            {
                "ev": "finish",
                "router": trace.router,
                "design": trace.design,
                "wall_seconds": trace.wall_seconds,
                "cpu_seconds": trace.cpu_seconds,
                "counters": dict(trace.counters),
                "meta": dict(trace.meta),
            },
            heartbeat=False,
        )
        self.close()
        return trace

    def close(self) -> None:
        """Stop emitting; close the sink if this tracer opened it."""
        if self._closed:
            return
        self._closed = True
        if self._owns_sink:
            self._sink.close()


# ----------------------------------------------------------------------
# Reading / replay
# ----------------------------------------------------------------------
def check_stream_header(event: Event) -> None:
    """Raise :class:`ValueError` unless ``event`` is a valid header."""
    if event.get("ev") != "open":
        raise ValueError("stream does not start with an 'open' event")
    if event.get("format") != STREAM_FORMAT:
        raise ValueError(f"not an event stream: {event.get('format')!r}")
    if event.get("version") != STREAM_VERSION:
        raise ValueError(
            f"unsupported stream version {event.get('version')!r}"
        )


def parse_event_line(line: str) -> Event:
    """Decode one NDJSON line into an event dict (or raise ValueError)."""
    event = json.loads(line)
    if not isinstance(event, dict) or "ev" not in event:
        raise ValueError(f"not a stream event line: {line[:80]!r}")
    return event


def iter_stream_events(source: Sink) -> Iterator[Event]:
    """Yield the events of a stream file (or open text file object).

    The first line must be a valid ``open`` header; later lines that
    carry unknown ``ev`` values are yielded as-is (forward
    compatibility — consumers skip what they do not understand).
    """
    if isinstance(source, (str, pathlib.Path)):
        fh: IO[str] = open_stream_text(source, "rt")
        owns = True
    else:
        fh = source
        owns = False
    try:
        first = True
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = parse_event_line(line)
            if first:
                first = False
                check_stream_header(event)
            yield event
    finally:
        if owns:
            fh.close()


class StreamReplayer:
    """Incrementally reassembles stream events into a trace.

    Feed events in order with :meth:`apply`; :attr:`trace` is set once
    the ``finish`` event arrives.  ``repro watch`` keeps one of these
    alive while tailing a live file, so hotspot rollups are available
    the moment the run ends.
    """

    def __init__(self) -> None:
        self._spans: dict[int, Span] = {}
        self._roots: list[Span] = []
        #: Reassembled trace; ``None`` until the finish event.
        self.trace: Optional[RunTrace] = None
        #: Events applied so far (any type).
        self.events = 0

    def apply(self, event: Event) -> None:
        """Fold one event into the reassembly state."""
        self.events += 1
        ev = event.get("ev")
        if ev == "span-open":
            span = Span(
                name=event["name"],
                started_at=event.get("started_at", 0.0),
                gauges=dict(event.get("gauges", {})),
            )
            self._spans[event["id"]] = span
            parent = event.get("parent")
            if parent is None:
                self._roots.append(span)
            else:
                self._spans[parent].children.append(span)
        elif ev == "span-close":
            span = self._spans[event["id"]]
            span.wall_seconds = event.get("wall_seconds", 0.0)
            span.cpu_seconds = event.get("cpu_seconds", 0.0)
            span.counters = dict(event.get("counters", {}))
            span.gauges = dict(event.get("gauges", {}))
        elif ev == "finish":
            self.trace = RunTrace(
                router=event.get("router", ""),
                design=event.get("design", ""),
                wall_seconds=event.get("wall_seconds", 0.0),
                cpu_seconds=event.get("cpu_seconds", 0.0),
                spans=self._roots,
                counters=dict(event.get("counters", {})),
                meta=dict(event.get("meta", {})),
            )
        # open / count / gauge / progress / heartbeat: the span-close
        # and finish totals are authoritative; nothing to fold.


def read_stream(source: Sink) -> RunTrace:
    """Replay a complete stream into its :class:`RunTrace`.

    Raises :class:`ValueError` when the stream carries no ``finish``
    event (an interrupted run — the prefix is still iterable with
    :func:`iter_stream_events`).
    """
    replayer = StreamReplayer()
    for event in iter_stream_events(source):
        replayer.apply(event)
    if replayer.trace is None:
        raise ValueError(
            "stream has no 'finish' event (interrupted run?)"
        )
    return replayer.trace


def read_stream_text(text: str) -> RunTrace:
    """Replay a stream from its NDJSON text (testing convenience)."""
    return read_stream(io.StringIO(text))
