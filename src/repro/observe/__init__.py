"""Flow observability: staged tracing and metrics (spans + counters).

Every stage of both routing flows reports timings and event counts
here, so per-stage behavior (Tables III–VIII of the paper) is
measurable instead of being folded into one CPU number.
"""

from .tracer import (
    TRACE_FORMAT,
    TRACE_VERSION,
    RunTrace,
    Span,
    Tracer,
    ensure,
)

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "RunTrace",
    "Span",
    "Tracer",
    "ensure",
]
