"""Flow observability: staged tracing, metrics, analytics, logging.

Every stage of both routing flows reports timings and event counts
here, so per-stage behavior (Tables III–VIII of the paper) is
measurable instead of being folded into one CPU number.  On top of the
recording layer (:mod:`~repro.observe.tracer`) sit the consumers:
:mod:`~repro.observe.analytics` rolls traces up, diffs them against
baselines and extracts hotspots, and :mod:`~repro.observe.log` mirrors
trace events into stdlib logging for live progress.

Flows run with ``RouterConfig(audit=True)`` add an ``audit`` span
whose ``audit_nets_checked`` / ``audit_findings`` / ``audit_drift``
counters summarize the independent solution audit
(:mod:`repro.analysis.audit`); default-config traces are unchanged.
"""

from .analytics import (
    CounterDelta,
    DiffThresholds,
    Hotspot,
    StageStats,
    TimingDelta,
    TraceDiff,
    TraceSummary,
    diff_traces,
    hotspots,
    load_trace_file,
    render_diff,
    render_hotspots,
    render_summary,
)
from .log import (
    TRACE_LOGGER_NAME,
    LoggingTracer,
    configure_logging,
)
from .tracer import (
    TRACE_FORMAT,
    TRACE_VERSION,
    RunTrace,
    Span,
    Tracer,
    ensure,
)

__all__ = [
    "TRACE_FORMAT",
    "TRACE_LOGGER_NAME",
    "TRACE_VERSION",
    "CounterDelta",
    "DiffThresholds",
    "Hotspot",
    "LoggingTracer",
    "RunTrace",
    "Span",
    "StageStats",
    "TimingDelta",
    "TraceDiff",
    "TraceSummary",
    "Tracer",
    "configure_logging",
    "diff_traces",
    "ensure",
    "hotspots",
    "load_trace_file",
    "render_diff",
    "render_hotspots",
    "render_summary",
]
