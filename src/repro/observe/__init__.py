"""Flow observability: staged tracing, metrics, analytics, logging.

Every stage of both routing flows reports timings and event counts
here, so per-stage behavior (Tables III–VIII of the paper) is
measurable instead of being folded into one CPU number.  On top of the
recording layer (:mod:`~repro.observe.tracer`) sit the consumers:
:mod:`~repro.observe.analytics` rolls traces up, diffs them against
baselines and extracts hotspots, :mod:`~repro.observe.log` mirrors
trace events into stdlib logging for live progress, and
:mod:`~repro.observe.stream` streams events to an NDJSON sink *while
the run executes* (tailed by ``repro watch``) and replays finished
streams back into byte-identical :class:`RunTrace` documents.

Flows run with ``RouterConfig(audit=True)`` add an ``audit`` span
whose ``audit_nets_checked`` / ``audit_findings`` / ``audit_drift``
counters summarize the independent solution audit
(:mod:`repro.analysis.audit`); default-config traces are unchanged.

Every name a tracer may record is declared in
:mod:`~repro.observe.schema` — the canonical registry of counters,
gauges, spans, and progress kinds with their owner stage and backend
coverage.  The regression gate's strip lists, the perf-history
columns, and the static PAR005 parity rule all derive from it.
"""

from . import schema
from .analytics import (
    CounterDelta,
    DiffThresholds,
    Hotspot,
    PerfHistory,
    StageStats,
    TimingDelta,
    TraceDiff,
    TraceSummary,
    collect_perf_history,
    diff_traces,
    hotspots,
    load_trace_file,
    render_diff,
    render_hotspots,
    render_perf_history,
    render_summary,
)
from .log import (
    TRACE_LOGGER_NAME,
    LoggingTracer,
    configure_logging,
)
from .schema import (
    ALL_BACKENDS,
    CATEGORY_PREFIXES,
    MetricSpec,
    history_counters,
    is_registered,
    lookup,
    metric_names,
    metric_specs,
    strip_prefixes,
)
from .stream import (
    STREAM_FORMAT,
    STREAM_SUFFIXES,
    STREAM_VERSION,
    StreamingTracer,
    StreamReplayer,
    iter_stream_events,
    read_stream,
    read_stream_text,
)
from .tracer import (
    TRACE_FORMAT,
    TRACE_VERSION,
    RunTrace,
    Span,
    Tracer,
    ensure,
)
from .watch import (
    StreamWatcher,
    follow_events,
    watch_stream,
)

__all__ = [
    "ALL_BACKENDS",
    "CATEGORY_PREFIXES",
    "MetricSpec",
    "STREAM_FORMAT",
    "STREAM_SUFFIXES",
    "STREAM_VERSION",
    "TRACE_FORMAT",
    "TRACE_LOGGER_NAME",
    "TRACE_VERSION",
    "CounterDelta",
    "DiffThresholds",
    "Hotspot",
    "LoggingTracer",
    "PerfHistory",
    "RunTrace",
    "Span",
    "StageStats",
    "StreamReplayer",
    "StreamWatcher",
    "StreamingTracer",
    "TimingDelta",
    "TraceDiff",
    "TraceSummary",
    "Tracer",
    "collect_perf_history",
    "configure_logging",
    "diff_traces",
    "ensure",
    "follow_events",
    "history_counters",
    "hotspots",
    "is_registered",
    "iter_stream_events",
    "load_trace_file",
    "lookup",
    "metric_names",
    "metric_specs",
    "read_stream",
    "read_stream_text",
    "render_diff",
    "render_hotspots",
    "render_perf_history",
    "render_summary",
    "schema",
    "strip_prefixes",
    "watch_stream",
]
