"""Flow observability: staged tracing, metrics, analytics, logging.

Every stage of both routing flows reports timings and event counts
here, so per-stage behavior (Tables III–VIII of the paper) is
measurable instead of being folded into one CPU number.  On top of the
recording layer (:mod:`~repro.observe.tracer`) sit the consumers:
:mod:`~repro.observe.analytics` rolls traces up, diffs them against
baselines and extracts hotspots, :mod:`~repro.observe.log` mirrors
trace events into stdlib logging for live progress, and
:mod:`~repro.observe.stream` streams events to an NDJSON sink *while
the run executes* (tailed by ``repro watch``) and replays finished
streams back into byte-identical :class:`RunTrace` documents.

Flows run with ``RouterConfig(audit=True)`` add an ``audit`` span
whose ``audit_nets_checked`` / ``audit_findings`` / ``audit_drift``
counters summarize the independent solution audit
(:mod:`repro.analysis.audit`); default-config traces are unchanged.
"""

from .analytics import (
    CounterDelta,
    DiffThresholds,
    Hotspot,
    PerfHistory,
    StageStats,
    TimingDelta,
    TraceDiff,
    TraceSummary,
    collect_perf_history,
    diff_traces,
    hotspots,
    load_trace_file,
    render_diff,
    render_hotspots,
    render_perf_history,
    render_summary,
)
from .log import (
    TRACE_LOGGER_NAME,
    LoggingTracer,
    configure_logging,
)
from .stream import (
    STREAM_FORMAT,
    STREAM_SUFFIXES,
    STREAM_VERSION,
    StreamingTracer,
    StreamReplayer,
    iter_stream_events,
    read_stream,
    read_stream_text,
)
from .tracer import (
    TRACE_FORMAT,
    TRACE_VERSION,
    RunTrace,
    Span,
    Tracer,
    ensure,
)
from .watch import (
    StreamWatcher,
    follow_events,
    watch_stream,
)

__all__ = [
    "STREAM_FORMAT",
    "STREAM_SUFFIXES",
    "STREAM_VERSION",
    "TRACE_FORMAT",
    "TRACE_LOGGER_NAME",
    "TRACE_VERSION",
    "CounterDelta",
    "DiffThresholds",
    "Hotspot",
    "LoggingTracer",
    "PerfHistory",
    "RunTrace",
    "Span",
    "StageStats",
    "StreamReplayer",
    "StreamWatcher",
    "StreamingTracer",
    "TimingDelta",
    "TraceDiff",
    "TraceSummary",
    "Tracer",
    "collect_perf_history",
    "configure_logging",
    "diff_traces",
    "ensure",
    "follow_events",
    "hotspots",
    "iter_stream_events",
    "load_trace_file",
    "read_stream",
    "read_stream_text",
    "render_diff",
    "render_hotspots",
    "render_perf_history",
    "render_summary",
    "watch_stream",
]
