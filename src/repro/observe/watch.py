"""Live run monitor: tail an event stream (``repro watch``).

A :class:`StreamWatcher` folds the NDJSON events of
:mod:`repro.observe.stream` into human-oriented progress lines: stage
opens/closes with their wall share, net-commit rates (``nets/s``), A*
throughput (``expansions/s``), heartbeat gauges (peak RSS, open-span
depth), and — between heartbeats — the *hotspot delta*: the span path
whose closed wall time grew the most since the previous beat.  When
the ``finish`` event arrives the watcher prints the standard hotspot
ranking of the reassembled trace, so a tailed run ends with the same
rollup ``repro trace top`` would print.

:func:`follow_events` is the tailing reader underneath: it yields
complete event lines as the producer appends them, polling on EOF
until the ``finish`` event, the producer's silence exceeds
``timeout``, or ``follow=False`` reaches the current end of file.
Partial trailing lines (the producer mid-``write``) are never yielded
— the reader seeks back and retries, so a consumer only ever sees
whole events.

This module never runs inside a routing flow — its ``time.sleep``
polling and wall-clock arithmetic are observer-side only.
"""

from __future__ import annotations

import sys
import time
from collections.abc import Iterator
from typing import IO, Optional, TextIO

from .analytics import hotspots, render_hotspots
from .stream import (
    Event,
    StreamReplayer,
    check_stream_header,
    open_stream_text,
    parse_event_line,
)
from .schema import history_counters, is_registered
from .tracer import PathLike

#: Counter names whose span-close totals feed the expansions/s rate.
_EXPANSION_COUNTERS = ("maze_expansions", "astar_expansions")

#: Span-close counters worth echoing inline (kept short on purpose).
#: The registry sweep caught the original hand-written list carrying a
#: ``routed_nets`` entry that no stage ever emits (the counter is
#: ``nets_routed``); deriving from the schema keeps the pick honest.
_NOTABLE_COUNTERS = ("nets_routed",) + history_counters()

for _name in _EXPANSION_COUNTERS + _NOTABLE_COUNTERS:
    if not is_registered("counter", _name):
        raise ValueError(f"watch monitor references unregistered {_name!r}")


def follow_events(
    path: PathLike,
    follow: bool = True,
    poll_interval: float = 0.5,
    timeout: Optional[float] = None,
) -> Iterator[Event]:
    """Yield events from ``path``, tailing the file while it grows.

    Args:
        path: stream file (``.ndjson`` or ``.ndjson.gz``; gzip files
            are complete archives, so tailing them only makes sense
            with ``follow=False``).
        follow: keep polling at EOF until the ``finish`` event
            arrives; ``False`` stops at the current end of file.
        poll_interval: seconds between EOF polls.
        timeout: abort with :class:`TimeoutError` after this many
            seconds without a single new complete line (``None``
            waits forever).
    """
    fh: IO[str] = open_stream_text(path, "rt")
    try:
        first = True
        idle = 0.0
        while True:
            position = fh.tell()
            line = fh.readline()
            if line.endswith("\n"):
                idle = 0.0
                stripped = line.strip()
                if not stripped:
                    continue
                event = parse_event_line(stripped)
                if first:
                    first = False
                    check_stream_header(event)
                yield event
                if event.get("ev") == "finish":
                    return
                continue
            # EOF, or a partial line the producer is still writing:
            # rewind so the fragment is re-read whole next time.
            fh.seek(position)
            if not follow:
                return
            time.sleep(poll_interval)
            idle += poll_interval
            if timeout is not None and idle >= timeout:
                raise TimeoutError(
                    f"no stream activity in {path} for {idle:.1f}s"
                )
    finally:
        fh.close()


class StreamWatcher:
    """Folds stream events into live progress lines on ``out``.

    Only shallow spans (stages and their direct children, depth <= 1)
    get open/close lines — deep per-round spans would drown the
    terminal; their wall still feeds the hotspot-delta tracking and
    the final ranking.
    """

    def __init__(self, out: Optional[TextIO] = None) -> None:
        self._out: TextIO = out if out is not None else sys.stdout
        self.replayer = StreamReplayer()
        self._depth: dict[int, int] = {}
        self._path: dict[int, str] = {}
        self._started: dict[int, float] = {}
        self._nets = 0
        self._tasks = 0
        self._expansions = 0.0
        self._wall = 0.0
        self._closed_wall: dict[str, float] = {}
        self._hotspot_snapshot: dict[str, float] = {}

    # -- helpers -------------------------------------------------------
    def _print(self, text: str) -> None:
        self._out.write(text + "\n")
        self._out.flush()

    def _stamp(self) -> str:
        return f"[{self._wall:8.2f}s]"

    def _rates(self) -> str:
        if self._wall <= 0.0:
            return ""
        parts = []
        if self._nets:
            parts.append(f"{self._nets / self._wall:.1f} nets/s")
        if self._expansions:
            parts.append(f"{self._expansions / self._wall:.0f} expansions/s")
        return "  ".join(parts)

    def _hotspot_delta(self) -> str:
        """The span path whose closed wall grew most since last call."""
        best_path, best_delta = "", 0.0
        for path, wall in self._closed_wall.items():
            delta = wall - self._hotspot_snapshot.get(path, 0.0)
            if delta > best_delta:
                best_path, best_delta = path, delta
        self._hotspot_snapshot = dict(self._closed_wall)
        if not best_path:
            return ""
        return f"hotspot {best_path} +{best_delta:.3f}s"

    # -- event handling ------------------------------------------------
    def handle(self, event: Event) -> None:
        """Fold one event: update state, print any progress line."""
        self.replayer.apply(event)
        ev = event.get("ev")
        if ev == "open":
            self._print(
                f"watching stream ({event.get('format')} "
                f"v{event.get('version')})"
            )
        elif ev == "span-open":
            sid = int(event["id"])
            parent = event.get("parent")
            depth = 0 if parent is None else self._depth[int(parent)] + 1
            path = event.get("name", "?")
            if parent is not None:
                path = f"{self._path[int(parent)]}/{path}"
            started = float(event.get("started_at", 0.0))
            self._depth[sid] = depth
            self._path[sid] = str(path)
            self._started[sid] = started
            self._wall = max(self._wall, started)
            if depth <= 1:
                self._print(f"{self._stamp()} > {path}")
        elif ev == "span-close":
            sid = int(event["id"])
            wall = float(event.get("wall_seconds", 0.0))
            path = self._path.get(sid, "?")
            self._closed_wall[path] = self._closed_wall.get(path, 0.0) + wall
            self._wall = max(self._wall, self._started.get(sid, 0.0) + wall)
            counters = event.get("counters") or {}
            for name in _EXPANSION_COUNTERS:
                self._expansions += counters.get(name, 0)
            if self._depth.get(sid, 0) <= 1:
                notable = "  ".join(
                    f"{name}={counters[name]:g}"
                    for name in _NOTABLE_COUNTERS
                    if name in counters
                )
                line = f"{self._stamp()} < {path}  wall={wall:.3f}s"
                if notable:
                    line += f"  {notable}"
                self._print(line)
        elif ev == "progress":
            kind = event.get("kind")
            if kind == "net":
                self._nets += 1
                if self._nets % 100 == 0:
                    rates = self._rates()
                    suffix = f"  ({rates})" if rates else ""
                    self._print(
                        f"{self._stamp()} {self._nets} nets committed"
                        f"{suffix}"
                    )
            elif kind == "task":
                self._tasks += 1
        elif ev == "heartbeat":
            self._wall = max(self._wall, float(event.get("wall_seconds", 0.0)))
            rss_mib = float(event.get("rss_kib", 0)) / 1024.0
            parts = [
                f"{self._stamp()} heartbeat",
                f"rss={rss_mib:.0f}MiB",
                f"events={event.get('events', 0)}",
                f"open_spans={event.get('open_spans', 0)}",
            ]
            rates = self._rates()
            if rates:
                parts.append(rates)
            delta = self._hotspot_delta()
            if delta:
                parts.append(delta)
            self._print("  ".join(parts))
        elif ev == "finish":
            self._wall = max(
                self._wall, float(event.get("wall_seconds", 0.0))
            )
            self._print(
                f"{self._stamp()} finished: "
                f"{event.get('router', '?')} on {event.get('design', '?')} "
                f"(wall {event.get('wall_seconds', 0.0):.3f}s, "
                f"cpu {event.get('cpu_seconds', 0.0):.3f}s)"
            )
            rates = self._rates()
            if rates:
                self._print(f"  overall: {rates}")
            trace = self.replayer.trace
            if trace is not None:
                self._print("")
                self._print(render_hotspots(hotspots(trace, n=5)))
        # count / gauge / unknown events: folded by the replayer only.


def watch_stream(
    path: PathLike,
    follow: bool = True,
    poll_interval: float = 0.5,
    timeout: Optional[float] = None,
    out: Optional[TextIO] = None,
) -> int:
    """Tail ``path`` and print live progress; the ``repro watch`` body.

    Returns a process exit code: 0 when the ``finish`` event was seen,
    1 when the stream ended (or ``--no-follow`` hit EOF) without one.
    Malformed streams and tail timeouts raise (:class:`ValueError`,
    :class:`json.JSONDecodeError`, :class:`TimeoutError`) for the CLI
    to report.
    """
    watcher = StreamWatcher(out=out)
    for event in follow_events(
        path, follow=follow, poll_interval=poll_interval, timeout=timeout
    ):
        watcher.handle(event)
    if watcher.replayer.trace is None:
        stream = out if out is not None else sys.stdout
        stream.write("stream ended without a finish event\n")
        return 1
    return 0


__all__ = [
    "StreamWatcher",
    "follow_events",
    "watch_stream",
]
