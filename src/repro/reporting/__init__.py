"""Paper-style result tables."""

from .tables import comparison_row, format_cell, format_table

__all__ = ["comparison_row", "format_cell", "format_table"]
