"""Paper-style table formatting.

Every benchmark prints its results with :func:`format_table`, aligned
like the paper's tables, and :func:`comparison_row` appends the
normalized "Comp." row (geometric-free simple ratio of column sums,
matching how the paper normalizes its final rows).
"""

from __future__ import annotations

from collections.abc import Sequence

from typing import Optional, Union

Value = Union[str, int, float, None]


def format_cell(value: Value, decimals: int = 2) -> str:
    """Human-readable cell text."""
    if value is None:
        return "NA"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{decimals}f}"
    return str(value)


def format_table(
    rows: Sequence[dict[str, Value]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    decimals: int = 2,
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return title or "(empty table)"
    columns = list(columns) if columns else list(rows[0])
    header = [str(c) for c in columns]
    body = [
        [format_cell(row.get(c), decimals) for c in columns] for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body))
        for i in range(len(columns))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(header, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def comparison_row(
    rows: Sequence[dict[str, Value]],
    reference_rows: Sequence[dict[str, Value]],
    columns: Sequence[str],
    label_column: str,
    label: str = "Comp.",
) -> dict[str, Value]:
    """Normalized totals row: sum(rows) / sum(reference_rows) per column.

    Non-numeric or missing entries are skipped; a zero reference sum
    yields ``None`` (printed as NA), matching the paper's ``-*`` marks.
    """
    out: dict[str, Value] = {label_column: label}
    for column in columns:
        if column == label_column:
            continue
        total = _numeric_sum(rows, column)
        reference = _numeric_sum(reference_rows, column)
        bad = total is None or reference in (None, 0)
        out[column] = None if bad else total / reference
    return out


def _numeric_sum(
    rows: Sequence[dict[str, Value]], column: str
) -> Optional[float]:
    total = 0.0
    seen = False
    for row in rows:
        value = row.get(column)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            total += float(value)
            seen = True
    return total if seen else None
