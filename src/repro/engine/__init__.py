"""Array-core routing engine (``RouterConfig(engine="array")``).

A numpy-backed implementation of the two routing hot paths behind the
``engine=`` seam of :class:`~repro.config.RouterConfig`:

* :class:`ArrayDetailedGrid` / :class:`ArrayGridOverlay` — the detailed
  routing grid with flat node-indexed base-cost, ownership, and pin
  arrays plus an indexed A* (:meth:`~ArrayDetailedGrid.indexed_search`)
  that replaces tuple nodes with integer node ids;
* :class:`ArrayGlobalGraph` / :class:`ArrayGraphSnapshot` — the global
  routing graph with incrementally maintained next-use cost caches and
  an indexed tile A* (:meth:`~ArrayGlobalGraph.astar_in_window`).

Both classes are drop-in subclasses of the object-graph reference
implementations; the routers select them through duck-typed dispatch
hooks (``indexed_search`` / ``astar_in_window`` / the overlay and
snapshot factories), so the engines share every line of algorithmic
control flow outside the inner loops.  The array engine is required to
produce **byte-identical** :class:`~repro.eval.RoutingReport` documents
— counters, histograms, and traces modulo wall times — which the
object-vs-array differential suite (``tests/engine``) and the solution
auditor enforce.  ``docs/performance.md`` documents the design and the
bit-identity obligations.
"""

from .deltas import OverlayDelta
from .detailed import ArrayDetailedGrid, ArrayGridOverlay
from .globalroute import ArrayGlobalGraph, ArrayGraphSnapshot

__all__ = [
    "ArrayDetailedGrid",
    "ArrayGlobalGraph",
    "ArrayGraphSnapshot",
    "ArrayGridOverlay",
    "OverlayDelta",
]
