"""Array-core detailed routing: flat node-indexed state + indexed A*.

The object engine spends most of the detailed-routing wall clock
hashing ``(x, y, layer)`` tuples: every ``_passable`` probe, every
``best_g`` lookup, and every heap entry pays tuple construction and
tuple hashing.  The array core flattens the grid to integer node ids

    ``idx = (x * height + y) * num_layers + (layer - 1)``

so a planar x move is ``idx +- height * num_layers``, a planar y move
is ``idx +- num_layers`` and a via is ``idx +- 1``.  The encoding is
monotonic in ``(x, y, layer)``, so ordering ids compares exactly like
ordering node tuples — the ``(f, g, node)`` heap tie-break of the
object engine is preserved bit for bit.

Per-stage state follows the incremental obstacle-cache idiom: the base
step-cost array (Eq. (10) ``alpha`` plus the ``gamma`` escape term,
with a negative sentinel for structurally blocked nodes), the per-x
via surcharge, the ownership-id array and the pin mask are built once
per stage — numpy assembles them, plain lists serve them, because the
search reads single entries where list indexing beats ndarray scalar
access — and overlays borrow them by reference instead of rebuilding.

:class:`ArrayDetailedGrid` keeps the inherited ``_owner`` dict
authoritative (every overlay, the sanitizer, and the auditor keep
working on the object surface unchanged) and mirrors each ownership
write into the id array via the public mutators.  The indexed search
replicates the object engine's control flow *exactly* — candidate
order, ownership-read points, ``cost_evaluations`` increments, the
expansion-counter position and the ``1e-12`` relaxation slack — so
both engines produce byte-identical reports; ``tests/engine`` holds
the differential suite that enforces this.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

import numpy as np

from ..analysis.pairing import paired
from ..config import RouterConfig
from ..detailed.grid import DetailedGrid, Node
from ..detailed.overlay import GridOverlay, _OwnerOverlay
from ..layout import Design

_INF = float("inf")

#: Step-cost sentinel for structurally blocked nodes (vertical layer on
#: a stitching-line track).  Negative so the hot loop can test
#: ``step >= 0.0`` instead of comparing against infinity.
_BLOCKED_STEP = -1.0

#: Sentinel in the ownership-folded step array (:attr:`_free_step`) for
#: nodes whose owner id is nonzero.  Distinct from ``_BLOCKED_STEP`` so
#: the fast loop can tell "owned — maybe by me" (recheck the id array)
#: from "structurally blocked" (reject outright) with one comparison.
_OWNED_STEP = -2.0


def _never_called(_: int) -> None:  # pragma: no cover - typing placeholder
    raise AssertionError("read logger invoked on a non-overlay grid")


class _IndexedSearchMixin:
    """Indexed A* over the flat arrays shared by grid and overlays.

    Concrete classes (:class:`ArrayDetailedGrid`,
    :class:`ArrayGridOverlay`) provide the attributes below; the mixin
    provides node-id encoding and :meth:`indexed_search`, the fast
    path that :func:`repro.detailed.search.astar_connect` dispatches
    to when present.
    """

    config: RouterConfig
    cost_evaluations: int
    _width: int
    _height: int
    _num_layers: int
    _hl: int
    _step: list[float]
    #: Base-grid only: ``_step`` with ``_OWNED_STEP`` folded in wherever
    #: the owner id is nonzero, so the specialized loop resolves the
    #: common free-node candidate with a single load and compare.  The
    #: ownership mutators keep it in sync; overlays never read it.
    _free_step: list[float]
    _via_extra: list[float]
    _owner_ids: list[int]
    _pin_mask: bytearray
    _on_line: list[bool]
    _vertical: list[bool]
    #: Overlay-only (``None`` on the base grid): buffered ownership ids
    #: and the indexed read log backing the speculative footprint.
    _local_ids: Optional[dict[int, int]] = None
    _reads_idx: Optional[set[int]] = None

    def _encode(self, node: Node) -> int:
        """Flat id of a node; monotonic in ``(x, y, layer)``."""
        x, y, layer = node
        return (x * self._height + y) * self._num_layers + layer - 1

    def _decode(self, idx: int) -> Node:
        """Node tuple of a flat id (inverse of :meth:`_encode`)."""
        x, rem = divmod(idx, self._hl)
        y, lm = divmod(rem, self._num_layers)
        return (x, y, lm + 1)

    def _net_id(self, net: str) -> int:
        """Integer id of ``net`` in the ownership array (never 0)."""
        raise NotImplementedError  # repro: allow-PAR004 abstract hook; concrete engines override

    @paired("detailed-astar", backend="array")
    def indexed_search(  # repro: allow-PAR006 the grid argument is the receiver on this side
        self,
        net: str,
        sources: set[Node],
        targets: set[Node],
        window: tuple[int, int, int, int],
        expansion_limit: int,
        blocked: Optional[set[Node]] = None,
        foreign_penalty: Optional[float] = None,
        stats: Optional[dict[str, float]] = None,
        profile: bool = False,
    ) -> Optional[list[Node]]:
        """Array-core twin of :func:`~repro.detailed.search.astar_connect`.

        Same arguments (minus the grid, which is ``self``), same
        result, same counter increments; called by ``astar_connect``
        after its shared preamble (search counting, empty-set and
        shared-node shortcuts), so only the heap loop lives here.

        Byte-identity notes: candidates are generated in the object
        engine's order (planar minus, planar plus, via down, via up);
        ownership is consulted — and read-logged on overlays — exactly
        when ``_passable`` would consult it (after bounds and the
        structural-block test, *before* the on-line via filter);
        ``cost_evaluations`` counts passable candidates before the
        window/blocked filters; the expansion counter increments after
        the target test; relaxation keeps the ``1e-12`` slack.  All
        step costs replicate the reference association order, so every
        float compares equal bit for bit.

        ``profile=True`` flushes ``perf_heap_pops`` / ``perf_heap_pushes``
        into ``stats``.  Only pops are counted in the loop (one add per
        expansion-candidate pop, unconditionally, so both modes run the
        same instructions); pushes are derived exactly at flush time
        from the heap invariant ``pushes == pops + len(heap)``, which
        matches the reference loop's explicit push count bit for bit.
        """
        lo_x, lo_y, hi_x, hi_y = window
        weight = 1.3 * self.config.alpha

        encode = self._encode
        width = self._width
        height = self._height
        layers_n = self._num_layers
        hl = self._hl

        # Target bbox + encoded ids.  Rip-up reconnects pass whole net
        # components as targets, so this setup is O(|targets|) per
        # search; one vectorized pass replaces four scans plus a
        # per-node encode.  Integer arithmetic is exact either way —
        # both branches produce identical values.
        if len(targets) >= 16:
            tarr = np.array(
                list(targets), dtype=np.int64
            )
            txs, tys = tarr[:, 0], tarr[:, 1]
            t_lo_x = int(txs.min())
            t_hi_x = int(txs.max())
            t_lo_y = int(tys.min())
            t_hi_y = int(tys.max())
            tgt = frozenset(
                ((txs * height + tys) * layers_n + tarr[:, 2] - 1).tolist()
            )
        else:
            t_lo_x = min(t[0] for t in targets)
            t_hi_x = max(t[0] for t in targets)
            t_lo_y = min(t[1] for t in targets)
            t_hi_y = max(t[1] for t in targets)
            tgt = frozenset(
                encode(t) for t in targets
            )
        step = self._step
        via_extra = self._via_extra
        on_line = self._on_line
        vertical = self._vertical
        owner_ids = self._owner_ids
        pins = self._pin_mask
        net_id = self._net_id(net)
        fp = foreign_penalty

        local_ids = self._local_ids
        reads_idx = self._reads_idx
        if local_ids is not None and reads_idx is not None:
            local_get: Optional[Callable[[int], Optional[int]]] = local_ids.get
            reads_add: Callable[[int], None] = reads_idx.add
        else:
            local_get = None
            reads_add = _never_called

        blk: Optional[frozenset] = None
        if blocked is not None:
            blk = frozenset(encode(b) for b in blocked)

        # Seeding order over the source set is immaterial: best_g is a
        # pure mapping and heap entries are totally ordered by
        # (f, g, id), so pop order never depends on insertion order —
        # the same argument astar_connect documents for tuple nodes.
        # Large source sets (rip-up reconnects seed whole components)
        # take the vectorized branch; the clipped distances and the
        # int64 encode produce the same values as the scalar branch,
        # and ``weight * int`` multiplies identically in float64.
        #
        # Heap entries carry the node's clipped heuristic deltas as a
        # fourth and fifth element so the pop side reuses them instead
        # of recomputing eight comparisons per expansion.  They are a
        # pure function of the node id (given the fixed target bbox),
        # so two entries that tie on ``(f, g, id)`` carry equal deltas
        # and the heap order stays exactly the 3-tuple order.
        best_g: dict[int, float]
        src_idx: set[int]
        heap: list[tuple[float, float, int, int, int]]
        if len(sources) >= 16:
            sarr = np.array(
                list(sources), dtype=np.int64
            )
            sxs, sys_ = sarr[:, 0], sarr[:, 1]
            sdx = np.maximum(np.maximum(t_lo_x - sxs, sxs - t_hi_x), 0)
            sdy = np.maximum(np.maximum(t_lo_y - sys_, sys_ - t_hi_y), 0)
            sis = ((sxs * height + sys_) * layers_n + sarr[:, 2] - 1).tolist()
            best_g = dict.fromkeys(sis, 0.0)
            src_idx = set(sis)
            heap = [
                (f0, 0.0, si0, dx0, dy0)
                for f0, si0, dx0, dy0 in zip(
                    (weight * (sdx + sdy)).tolist(),
                    sis,
                    sdx.tolist(),
                    sdy.tolist(),
                )
            ]
        else:
            best_g = {}
            src_idx = set()
            heap = []
            for s in sources:
                x, y, _layer = s
                dx = (t_lo_x - x) if x < t_lo_x else (x - t_hi_x) if x > t_hi_x else 0
                dy = (t_lo_y - y) if y < t_lo_y else (y - t_hi_y) if y > t_hi_y else 0
                si = encode(s)
                best_g[si] = 0.0
                src_idx.add(si)
                heap.append((weight * (dx + dy), 0.0, si, dx, dy))
        heapq.heapify(heap)

        parent: dict[int, int] = {}
        best_g_get = best_g.get
        heappop = heapq.heappop
        heappush = heapq.heappush
        expansions = 0
        evals = 0
        pops = 0
        try:
            if local_get is None and fp is None and blk is None:
                # Specialized loop for the dominant case (~85% of the
                # searches on the gate circuits): base grid, no foreign
                # penalty, no blocked set.  Identical candidate order,
                # counter increments, and float association order as
                # the general loop below — only the branches that are
                # statically dead here (overlay read logging, the
                # penalty rewrite, the blocked filter) are removed, so
                # every produced value is bit-identical.  The via
                # blocks hoist the on-line filter above the ownership
                # read, and candidates consult the ownership-folded
                # step array first: on the base grid ownership reads
                # have no logging side effect, so both reorders are
                # unobservable and the owner id array is only touched
                # for owned nodes (to recheck against ``net_id``).
                free_step = self._free_step
                while heap:
                    _f, g, si, hdx, hdy = heappop(heap)
                    pops += 1
                    if g > best_g_get(si, _INF):
                        continue
                    if si in tgt:
                        rev = [si]
                        while rev[-1] not in src_idx:
                            rev.append(parent[rev[-1]])
                        rev.reverse()
                        decode = self._decode
                        return [decode(i) for i in rev]
                    expansions += 1
                    if expansions > expansion_limit:
                        return None
                    x = si // hl
                    rem = si - x * hl
                    y = rem // layers_n
                    lm = rem - y * layers_n
                    in_x = lo_x <= x <= hi_x
                    in_y = lo_y <= y <= hi_y
                    off_line = not on_line[x]

                    if vertical[lm + 1]:
                        if y > 0:
                            ci = si - layers_n
                            sc = free_step[ci]
                            if sc < 0.0:
                                sc = (
                                    step[ci]
                                    if sc == _OWNED_STEP and owner_ids[ci] == net_id
                                    else _BLOCKED_STEP
                                )
                            if sc >= 0.0:
                                evals += 1
                                ny_ = y - 1
                                if in_x and lo_y <= ny_ <= hi_y:
                                    candidate = g + sc
                                    if candidate < best_g_get(ci, _INF) - 1e-12:
                                        best_g[ci] = candidate
                                        parent[ci] = si
                                        dy = (
                                            (t_lo_y - ny_)
                                            if ny_ < t_lo_y
                                            else (ny_ - t_hi_y)
                                            if ny_ > t_hi_y
                                            else 0
                                        )
                                        heappush(
                                            heap,
                                            (
                                                candidate + weight * (hdx + dy),
                                                candidate,
                                                ci,
                                                hdx,
                                                dy,
                                            ),
                                        )
                        if y + 1 < height:
                            ci = si + layers_n
                            sc = free_step[ci]
                            if sc < 0.0:
                                sc = (
                                    step[ci]
                                    if sc == _OWNED_STEP and owner_ids[ci] == net_id
                                    else _BLOCKED_STEP
                                )
                            if sc >= 0.0:
                                evals += 1
                                ny_ = y + 1
                                if in_x and lo_y <= ny_ <= hi_y:
                                    candidate = g + sc
                                    if candidate < best_g_get(ci, _INF) - 1e-12:
                                        best_g[ci] = candidate
                                        parent[ci] = si
                                        dy = (
                                            (t_lo_y - ny_)
                                            if ny_ < t_lo_y
                                            else (ny_ - t_hi_y)
                                            if ny_ > t_hi_y
                                            else 0
                                        )
                                        heappush(
                                            heap,
                                            (
                                                candidate + weight * (hdx + dy),
                                                candidate,
                                                ci,
                                                hdx,
                                                dy,
                                            ),
                                        )
                    else:
                        if x > 0:
                            ci = si - hl
                            sc = free_step[ci]
                            if sc < 0.0:
                                sc = (
                                    step[ci]
                                    if sc == _OWNED_STEP and owner_ids[ci] == net_id
                                    else _BLOCKED_STEP
                                )
                            if sc >= 0.0:
                                evals += 1
                                nx_ = x - 1
                                if in_y and lo_x <= nx_ <= hi_x:
                                    candidate = g + sc
                                    if candidate < best_g_get(ci, _INF) - 1e-12:
                                        best_g[ci] = candidate
                                        parent[ci] = si
                                        dx = (
                                            (t_lo_x - nx_)
                                            if nx_ < t_lo_x
                                            else (nx_ - t_hi_x)
                                            if nx_ > t_hi_x
                                            else 0
                                        )
                                        heappush(
                                            heap,
                                            (
                                                candidate + weight * (dx + hdy),
                                                candidate,
                                                ci,
                                                dx,
                                                hdy,
                                            ),
                                        )
                        if x + 1 < width:
                            ci = si + hl
                            sc = free_step[ci]
                            if sc < 0.0:
                                sc = (
                                    step[ci]
                                    if sc == _OWNED_STEP and owner_ids[ci] == net_id
                                    else _BLOCKED_STEP
                                )
                            if sc >= 0.0:
                                evals += 1
                                nx_ = x + 1
                                if in_y and lo_x <= nx_ <= hi_x:
                                    candidate = g + sc
                                    if candidate < best_g_get(ci, _INF) - 1e-12:
                                        best_g[ci] = candidate
                                        parent[ci] = si
                                        dx = (
                                            (t_lo_x - nx_)
                                            if nx_ < t_lo_x
                                            else (nx_ - t_hi_x)
                                            if nx_ > t_hi_x
                                            else 0
                                        )
                                        heappush(
                                            heap,
                                            (
                                                candidate + weight * (dx + hdy),
                                                candidate,
                                                ci,
                                                dx,
                                                hdy,
                                            ),
                                        )

                    if off_line:
                        if lm > 0:
                            ci = si - 1
                            sc = free_step[ci]
                            if sc < 0.0:
                                sc = (
                                    step[ci]
                                    if sc == _OWNED_STEP and owner_ids[ci] == net_id
                                    else _BLOCKED_STEP
                                )
                            if sc >= 0.0:
                                evals += 1
                                sc = sc + via_extra[x]
                                if in_x and in_y:
                                    candidate = g + sc
                                    if candidate < best_g_get(ci, _INF) - 1e-12:
                                        best_g[ci] = candidate
                                        parent[ci] = si
                                        heappush(
                                            heap,
                                            (
                                                candidate + weight * (hdx + hdy),
                                                candidate,
                                                ci,
                                                hdx,
                                                hdy,
                                            ),
                                        )
                        if lm + 1 < layers_n:
                            ci = si + 1
                            sc = free_step[ci]
                            if sc < 0.0:
                                sc = (
                                    step[ci]
                                    if sc == _OWNED_STEP and owner_ids[ci] == net_id
                                    else _BLOCKED_STEP
                                )
                            if sc >= 0.0:
                                evals += 1
                                sc = sc + via_extra[x]
                                if in_x and in_y:
                                    candidate = g + sc
                                    if candidate < best_g_get(ci, _INF) - 1e-12:
                                        best_g[ci] = candidate
                                        parent[ci] = si
                                        heappush(
                                            heap,
                                            (
                                                candidate + weight * (hdx + hdy),
                                                candidate,
                                                ci,
                                                hdx,
                                                hdy,
                                            ),
                                        )
                return None

            while heap:
                _f, g, si, hdx, hdy = heappop(heap)
                pops += 1
                if g > best_g_get(si, _INF):
                    continue
                if si in tgt:
                    rev = [si]
                    while rev[-1] not in src_idx:
                        rev.append(parent[rev[-1]])
                    rev.reverse()
                    decode = self._decode
                    return [decode(i) for i in rev]
                expansions += 1
                if expansions > expansion_limit:
                    return None
                x = si // hl
                rem = si - x * hl
                y = rem // layers_n
                lm = rem - y * layers_n
                # Window status of the popped node: planar moves reuse
                # the unchanged coordinate's verdict, vias (same x and
                # y as the node) reuse both — matching the object
                # engine's full per-successor window test.
                in_x = lo_x <= x <= hi_x
                in_y = lo_y <= y <= hi_y
                off_line = not on_line[x]

                # --- planar moves (preferred direction only) ---------
                if vertical[lm + 1]:
                    if y > 0:
                        ci = si - layers_n
                        sc = step[ci]
                        if sc >= 0.0:
                            if local_get is None:
                                o = owner_ids[ci]
                            else:
                                reads_add(ci)
                                v = local_get(ci)
                                if v is None:
                                    o = owner_ids[ci]
                                else:
                                    o = 0 if v == -1 else v
                            if o == 0 or o == net_id:
                                ok = True
                            elif fp is not None and not pins[ci]:
                                ok = True
                                sc = sc + fp
                            else:
                                ok = False
                            if ok:
                                evals += 1
                                ny_ = y - 1
                                if (
                                    in_x
                                    and lo_y <= ny_ <= hi_y
                                    and (blk is None or ci not in blk)
                                ):
                                    candidate = g + sc
                                    if candidate < best_g_get(ci, _INF) - 1e-12:
                                        best_g[ci] = candidate
                                        parent[ci] = si
                                        dy = (
                                            (t_lo_y - ny_)
                                            if ny_ < t_lo_y
                                            else (ny_ - t_hi_y) if ny_ > t_hi_y else 0
                                        )
                                        heappush(
                                            heap,
                                            (
                                                candidate + weight * (hdx + dy),
                                                candidate,
                                                ci,
                                                hdx,
                                                dy,
                                            ),
                                        )
                    if y + 1 < height:
                        ci = si + layers_n
                        sc = step[ci]
                        if sc >= 0.0:
                            if local_get is None:
                                o = owner_ids[ci]
                            else:
                                reads_add(ci)
                                v = local_get(ci)
                                if v is None:
                                    o = owner_ids[ci]
                                else:
                                    o = 0 if v == -1 else v
                            if o == 0 or o == net_id:
                                ok = True
                            elif fp is not None and not pins[ci]:
                                ok = True
                                sc = sc + fp
                            else:
                                ok = False
                            if ok:
                                evals += 1
                                ny_ = y + 1
                                if (
                                    in_x
                                    and lo_y <= ny_ <= hi_y
                                    and (blk is None or ci not in blk)
                                ):
                                    candidate = g + sc
                                    if candidate < best_g_get(ci, _INF) - 1e-12:
                                        best_g[ci] = candidate
                                        parent[ci] = si
                                        dy = (
                                            (t_lo_y - ny_)
                                            if ny_ < t_lo_y
                                            else (ny_ - t_hi_y) if ny_ > t_hi_y else 0
                                        )
                                        heappush(
                                            heap,
                                            (
                                                candidate + weight * (hdx + dy),
                                                candidate,
                                                ci,
                                                hdx,
                                                dy,
                                            ),
                                        )
                else:
                    if x > 0:
                        ci = si - hl
                        sc = step[ci]
                        if sc >= 0.0:
                            if local_get is None:
                                o = owner_ids[ci]
                            else:
                                reads_add(ci)
                                v = local_get(ci)
                                if v is None:
                                    o = owner_ids[ci]
                                else:
                                    o = 0 if v == -1 else v
                            if o == 0 or o == net_id:
                                ok = True
                            elif fp is not None and not pins[ci]:
                                ok = True
                                sc = sc + fp
                            else:
                                ok = False
                            if ok:
                                evals += 1
                                nx_ = x - 1
                                if (
                                    in_y
                                    and lo_x <= nx_ <= hi_x
                                    and (blk is None or ci not in blk)
                                ):
                                    candidate = g + sc
                                    if candidate < best_g_get(ci, _INF) - 1e-12:
                                        best_g[ci] = candidate
                                        parent[ci] = si
                                        dx = (
                                            (t_lo_x - nx_)
                                            if nx_ < t_lo_x
                                            else (nx_ - t_hi_x) if nx_ > t_hi_x else 0
                                        )
                                        heappush(
                                            heap,
                                            (
                                                candidate + weight * (dx + hdy),
                                                candidate,
                                                ci,
                                                dx,
                                                hdy,
                                            ),
                                        )
                    if x + 1 < width:
                        ci = si + hl
                        sc = step[ci]
                        if sc >= 0.0:
                            if local_get is None:
                                o = owner_ids[ci]
                            else:
                                reads_add(ci)
                                v = local_get(ci)
                                if v is None:
                                    o = owner_ids[ci]
                                else:
                                    o = 0 if v == -1 else v
                            if o == 0 or o == net_id:
                                ok = True
                            elif fp is not None and not pins[ci]:
                                ok = True
                                sc = sc + fp
                            else:
                                ok = False
                            if ok:
                                evals += 1
                                nx_ = x + 1
                                if (
                                    in_y
                                    and lo_x <= nx_ <= hi_x
                                    and (blk is None or ci not in blk)
                                ):
                                    candidate = g + sc
                                    if candidate < best_g_get(ci, _INF) - 1e-12:
                                        best_g[ci] = candidate
                                        parent[ci] = si
                                        dx = (
                                            (t_lo_x - nx_)
                                            if nx_ < t_lo_x
                                            else (nx_ - t_hi_x) if nx_ > t_hi_x else 0
                                        )
                                        heappush(
                                            heap,
                                            (
                                                candidate + weight * (dx + hdy),
                                                candidate,
                                                ci,
                                                dx,
                                                hdy,
                                            ),
                                        )

                # --- z moves (vias) ----------------------------------
                # The ownership read happens before the on-line via
                # filter, exactly like _passable-then-filter in the
                # object engine — overlays must log these reads even
                # when the via is then forbidden.
                if lm > 0:
                    ci = si - 1
                    sc = step[ci]
                    if sc >= 0.0:
                        if local_get is None:
                            o = owner_ids[ci]
                        else:
                            reads_add(ci)
                            v = local_get(ci)
                            if v is None:
                                o = owner_ids[ci]
                            else:
                                o = 0 if v == -1 else v
                        if o == 0 or o == net_id:
                            ok = True
                        elif fp is not None and not pins[ci]:
                            ok = True
                            sc = sc + fp
                        else:
                            ok = False
                        if ok and off_line:
                            evals += 1
                            sc = sc + via_extra[x]
                            if in_x and in_y and (blk is None or ci not in blk):
                                candidate = g + sc
                                if candidate < best_g_get(ci, _INF) - 1e-12:
                                    best_g[ci] = candidate
                                    parent[ci] = si
                                    heappush(
                                        heap,
                                        (
                                            candidate + weight * (hdx + hdy),
                                            candidate,
                                            ci,
                                            hdx,
                                            hdy,
                                        ),
                                    )
                if lm + 1 < layers_n:
                    ci = si + 1
                    sc = step[ci]
                    if sc >= 0.0:
                        if local_get is None:
                            o = owner_ids[ci]
                        else:
                            reads_add(ci)
                            v = local_get(ci)
                            if v is None:
                                o = owner_ids[ci]
                            else:
                                o = 0 if v == -1 else v
                        if o == 0 or o == net_id:
                            ok = True
                        elif fp is not None and not pins[ci]:
                            ok = True
                            sc = sc + fp
                        else:
                            ok = False
                        if ok and off_line:
                            evals += 1
                            sc = sc + via_extra[x]
                            if in_x and in_y and (blk is None or ci not in blk):
                                candidate = g + sc
                                if candidate < best_g_get(ci, _INF) - 1e-12:
                                    best_g[ci] = candidate
                                    parent[ci] = si
                                    heappush(
                                        heap,
                                        (
                                            candidate + weight * (hdx + hdy),
                                            candidate,
                                            ci,
                                            hdx,
                                            hdy,
                                        ),
                                    )
            return None
        finally:
            # Hot loop: count locally, flush once per search (the same
            # contract the object engine's grid/search pair keeps).
            self.cost_evaluations += evals
            if stats is not None:
                stats["astar_expansions"] = (
                    stats.get("astar_expansions", 0) + expansions
                )
                if profile:
                    # pushes == pops + len(heap) (heap invariant): the
                    # derived value equals the reference loop's explicit
                    # push count because the two loops are step-identical.
                    stats["perf_heap_pushes"] = (
                        stats.get("perf_heap_pushes", 0) + pops + len(heap)
                    )
                    stats["perf_heap_pops"] = (
                        stats.get("perf_heap_pops", 0) + pops
                    )


class ArrayDetailedGrid(_IndexedSearchMixin, DetailedGrid):
    """:class:`DetailedGrid` plus flat arrays and the indexed A* path.

    The inherited ``_owner`` dict stays authoritative — overlays, the
    sanitizer, and the auditor keep reading the object surface — and
    every public ownership mutator mirrors its effect into the flat
    id array, so the two views never diverge.
    """

    def __init__(self, design: Design, stitch_aware: bool = True) -> None:
        super().__init__(design, stitch_aware)
        width, height, layers_n = self._width, self._height, self._num_layers
        self._hl = height * layers_n
        config = self.config
        # Base step cost of entering each node: Eq. (10) alpha plus the
        # gamma escape term, blocked sentinel where the structural MEBL
        # constraint applies.  float64 arithmetic is bit-identical to
        # the scalar reference (single additions, same operands), and
        # C-order flattening matches the id encoding.
        base = np.full((width, height, layers_n), config.alpha, dtype=np.float64)
        vert_layers = np.array(self._vertical[1:], dtype=bool)
        all_rows = np.ones(height, dtype=bool)
        if stitch_aware:
            escape_cols = np.array(self._escape, dtype=bool)
            base[np.ix_(escape_cols, all_rows, vert_layers)] += config.gamma
        line_cols = np.array(self._on_line, dtype=bool)
        base[np.ix_(line_cols, all_rows, vert_layers)] = _BLOCKED_STEP
        self._step = base.reshape(-1).tolist()
        #: Per-x via surcharge (Eq. (10) beta inside unfriendly regions).
        self._via_extra = [
            config.beta if (stitch_aware and unfriendly) else 0.0
            for unfriendly in self._unfriendly
        ]
        size = width * self._hl
        self._owner_ids = [0] * size
        # Every node starts free, so the ownership-folded view begins
        # as a plain copy of the step array.
        self._free_step = list(self._step)
        self._pin_mask = bytearray(size)
        #: net name -> positive integer id (0 means free).  Filled for
        #: the whole netlist up front so worker threads never mutate it.
        self._net_ids: dict[str, int] = {}
        for net in design.netlist:
            self._net_id(net.name)

    # -- id registry ---------------------------------------------------
    def _net_id(self, net: str) -> int:
        nid = self._net_ids.get(net)
        if nid is None:
            nid = len(self._net_ids) + 1
            self._net_ids[net] = nid
        return nid

    # -- ownership mutators mirror into the id array --------------------
    def occupy(self, node: Node, net: str) -> None:
        super().occupy(node, net)
        idx = self._encode(node)
        self._owner_ids[idx] = self._net_id(net)
        self._free_step[idx] = _OWNED_STEP

    def force_occupy(self, node: Node, net: str) -> Optional[str]:
        evicted = super().force_occupy(node, net)
        idx = self._encode(node)
        self._owner_ids[idx] = self._net_id(net)
        self._free_step[idx] = _OWNED_STEP
        return evicted

    def release(self, node: Node, net: str) -> None:
        super().release(node, net)
        # Resync from the authoritative dict: release is a no-op for
        # pins and foreign owners, so read back what actually holds.
        owner = self._owner.get(node)
        idx = self._encode(node)
        if owner is None:
            self._owner_ids[idx] = 0
            self._free_step[idx] = self._step[idx]
        else:
            self._owner_ids[idx] = self._net_id(owner)
            self._free_step[idx] = _OWNED_STEP

    def mark_pin(self, node: Node) -> None:
        super().mark_pin(node)
        self._pin_mask[self._encode(node)] = 1

    # -- factories ------------------------------------------------------
    def speculative_overlay(self) -> GridOverlay:
        """Overlay for speculative routing (array-core fast path)."""
        return ArrayGridOverlay(self)


class _IndexedOwnerOverlay(_OwnerOverlay):
    """:class:`_OwnerOverlay` that mirrors buffered writes as net ids.

    The indexed search consults ``local_ids`` first (``RELEASED``
    tombstones a base-owned node the overlay released) and falls back
    to the base grid's id array, giving the exact view the dict-based
    overlay presents — while the dict surface keeps serving the
    sanitizer, the merge loop, and :meth:`GridOverlay.apply_to`.
    """

    __slots__ = ("local_ids", "_grid_ids", "_extra_ids", "_encode_node")

    #: Integer twin of :attr:`_OwnerOverlay.TOMBSTONE`.
    RELEASED = -1

    def __init__(self, base: ArrayDetailedGrid) -> None:
        super().__init__(base._owner)
        self._encode_node = base._encode
        self._grid_ids = base._net_ids
        #: Ids minted locally for names outside the preregistered
        #: netlist (defensive; searches only route netlist nets).
        #: Negative below the tombstone so they collide with nothing,
        #: and local so worker threads never grow the shared registry.
        self._extra_ids: dict[str, int] = {}
        self.local_ids: dict[int, int] = {}

    def id_of(self, net: str) -> int:
        nid = self._grid_ids.get(net)
        if nid is not None:
            return nid
        extra = self._extra_ids.get(net)
        if extra is None:
            extra = -2 - len(self._extra_ids)
            self._extra_ids[net] = extra
        return extra

    def __setitem__(self, node: Node, net: str) -> None:
        super().__setitem__(node, net)
        self.local_ids[self._encode_node(node)] = self.id_of(net)

    def __delitem__(self, node: Node) -> None:
        super().__delitem__(node)
        self.local_ids[self._encode_node(node)] = _IndexedOwnerOverlay.RELEASED


class ArrayGridOverlay(_IndexedSearchMixin, GridOverlay):
    """:class:`GridOverlay` whose searches run on the flat arrays.

    Borrows the base grid's step/via/pin/id arrays by reference (all
    frozen while a batch is in flight except the id array, which the
    buffered ``local_ids`` shadows) and records every indexed
    ownership consult in ``_reads_idx`` so :attr:`read_nodes` reports
    the same footprint the object engine's overlay would — the merge
    loop's conflict decisions are identical under either engine.
    """

    def __init__(self, base: ArrayDetailedGrid) -> None:
        super().__init__(base)
        self._hl = base._hl
        self._step = base._step
        self._via_extra = base._via_extra
        self._owner_ids = base._owner_ids
        self._pin_mask = base._pin_mask
        indexed = _IndexedOwnerOverlay(base)
        self._owner = indexed
        self._indexed_owner = indexed
        self._local_ids = indexed.local_ids
        self._reads_idx = set()

    def _net_id(self, net: str) -> int:
        return self._indexed_owner.id_of(net)

    @property
    def read_nodes(self) -> set[Node]:
        """Nodes whose ownership this overlay observed (both surfaces)."""
        decode = self._decode
        reads_idx = self._reads_idx
        assert reads_idx is not None
        indexed = {decode(i) for i in reads_idx}
        return self._indexed_owner.reads | indexed
