"""Picklable wire form of a detailed-routing speculative overlay.

The thread-pool path hands :class:`~repro.detailed.overlay.GridOverlay`
objects straight to the merge loop; a process-pool worker cannot — an
overlay borrows the whole live grid by reference.  :class:`OverlayDelta`
is what crosses the process boundary instead: the buffered ownership
operations in insertion order, the exact read/write footprints the
merge loop validates against, and the overlay's cost-evaluation count.

``apply_to`` replays operations exactly like ``GridOverlay.apply_to``
(``None`` releases, anything else force-occupies, cost evaluations
accumulate last), so the detailed router's merge loop treats overlays
and deltas interchangeably — which is precisely what makes the process
backend byte-identical to the thread backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..analysis.context import context
from ..detailed.grid import DetailedGrid, Node
from ..detailed.overlay import GridOverlay, _OwnerOverlay


@dataclass
class OverlayDelta:
    """Replayable ownership delta extracted from a grid overlay.

    Attributes:
        ops: buffered ownership assignments in overlay insertion
            order; ``None`` marks a release (the overlay's tombstone).
        read_nodes: base-ownership nodes the speculation read.
        write_nodes: declared write footprint.
        cost_evaluations: stitch-cost evaluations the overlay counted.
    """

    ops: list[tuple[Node, Optional[str]]]
    read_nodes: set[Node]
    write_nodes: set[Node]
    cost_evaluations: int

    @classmethod
    @context("worker-process")
    def from_overlay(cls, overlay: GridOverlay) -> "OverlayDelta":
        """Extract the wire form from a (possibly sanitized) overlay."""
        tombstone = _OwnerOverlay.TOMBSTONE
        ops: list[tuple[Node, Optional[str]]] = [
            (node, None if value is tombstone else value)
            for node, value in overlay._owner.local.items()
        ]
        return cls(
            ops=ops,
            read_nodes=set(overlay.read_nodes),
            write_nodes=set(overlay.write_nodes),
            cost_evaluations=overlay.cost_evaluations,
        )

    @context("canonical", reads=("grid.owner",), writes=("grid.owner",))
    def apply_to(self, base: DetailedGrid, net: str) -> None:
        """Replay onto the live grid, mirroring ``GridOverlay.apply_to``.

        A release op frees the node whatever base currently says: the
        speculation may have force-claimed it from a foreign net before
        trimming it away, in which case the serial run leaves it free
        while base still shows the evicted owner.
        """
        for node, value in self.ops:
            if value is None:
                current = base.owner(node)
                if current is not None:
                    base.release(node, current)
            else:
                base.force_occupy(node, value)
        base.cost_evaluations += self.cost_evaluations

    # ------------------------------------------------------------------
    # Canonical payload form (property tests round-trip through this)
    # ------------------------------------------------------------------
    def to_payload(self) -> tuple[Any, ...]:
        """Canonical tuple form: ops in order, footprints sorted."""
        return (
            tuple(self.ops),
            tuple(sorted(self.read_nodes)),
            tuple(sorted(self.write_nodes)),
            self.cost_evaluations,
        )

    @classmethod
    def from_payload(cls, payload: tuple[Any, ...]) -> "OverlayDelta":
        ops, reads, writes, cost_evaluations = payload
        return cls(
            ops=[(node, value) for node, value in ops],
            read_nodes=set(reads),
            write_nodes=set(writes),
            cost_evaluations=cost_evaluations,
        )
