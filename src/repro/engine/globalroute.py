"""Array-core global routing: cached step costs + indexed tile A*.

The object engine re-derives every A* step cost from scratch —
``2 ** ((demand + 1) / capacity)`` per edge probe, plus the vertex
(line-end) price at every vertical-run boundary.  The array core keeps
three cost caches, one entry per resource:

* ``_h_cost[i][j]`` / ``_v_cost[i][j]`` — the full A* edge step
  (``WL_WEIGHT`` + Eq. (1) next-use congestion + history);
* ``_v_price[i][j]`` — the full line-end step price (Eq. (2) next-use
  cost scaled by ``VERTEX_WEIGHT``, plus history and the hard overflow
  penalty).

Caches follow the incremental obstacle-cache idiom: built once per
stage, updated entry-wise by the demand mutators, rebuilt wholesale
after the serial history bump, and *cloned* per worker snapshot
instead of recomputed.  Every cache entry is produced by calling the
scalar reference kernels (:func:`~repro.globalroute.cost
.edge_cost_if_used`, :func:`~repro.globalroute.cost.vertex_price`) —
not the vectorized :func:`~repro.globalroute.cost
.congestion_cost_array`, whose ``numpy.exp2`` may differ from CPython
``2.0 ** x`` in the last ulp — so both engines price every step with
bit-identical floats.

The indexed A* encodes the object engine's ``((i, j), direction)``
search states as ``(i * ny + j) * 3 + dircode`` with ``"" < "h" < "v"``
mapped to ``0 < 1 < 2``; the encoding is monotonic in the tuple order,
so the ``(f, g, state)`` heap tie-break is preserved exactly and both
engines expand the same states in the same order.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from ..analysis.pairing import paired
from ..globalroute.cost import edge_cost_if_used, vertex_price
from ..globalroute.graph import GlobalGraph, Tile
from ..globalroute.overlay import GraphSnapshot
from ..globalroute.router import WL_WEIGHT
from ..layout import Design

_INF = float("inf")


class _CostCacheMixin:
    """Cost caches and the indexed A* shared by graph and snapshot.

    Concrete classes (:class:`ArrayGlobalGraph`,
    :class:`ArrayGraphSnapshot`) initialize ``_h_cost`` / ``_v_cost`` /
    ``_v_price``; the mixin maintains them through the demand mutators
    and provides :meth:`astar_in_window`, the fast path
    ``GlobalRouter._astar_in_window`` dispatches to when present.
    """

    nx: int
    ny: int
    _h_cost: list[list[float]]
    _v_cost: list[list[float]]
    _v_price: list[list[float]]

    #: Profiling counters (``RouterConfig(profile=...)``): wholesale
    #: cache rebuilds and entry-wise incremental updates.  Class-level
    #: zeros; the first increment creates the instance attribute, so
    #: snapshots (thread-local clones) count separately and the live
    #: graph's totals are what the router reports at stage end.
    perf_cache_refreshes = 0
    perf_cache_updates = 0

    def refresh_cost_cache(self) -> None:
        """Rebuild every cache entry from the scalar reference kernels.

        Called at construction and by the router after the history
        bump (which mutates the history arrays behind the graph's
        back).  Entries come from the same functions the object engine
        calls per A* probe, so the cached floats are bit-identical.
        """
        self.perf_cache_refreshes += 1
        graph = self._as_graph()
        nx, ny = self.nx, self.ny
        self._h_cost = [
            [WL_WEIGHT + edge_cost_if_used(graph, ("h", i, j)) for j in range(ny)]
            for i in range(nx - 1)
        ]
        self._v_cost = [
            [WL_WEIGHT + edge_cost_if_used(graph, ("v", i, j)) for j in range(ny - 1)]
            for i in range(nx)
        ]
        self._v_price = [
            [vertex_price(graph, (i, j)) for j in range(ny)] for i in range(nx)
        ]

    def _as_graph(self) -> GlobalGraph:
        """This object viewed as the graph the scalar kernels price."""
        assert isinstance(self, GlobalGraph)
        return self

    # -- demand mutators keep the caches fresh --------------------------
    def add_edge_demand(self, key: tuple[str, int, int], delta: int) -> None:
        super().add_edge_demand(key, delta)  # type: ignore[misc]
        self.perf_cache_updates += 1
        kind, i, j = key
        cost = WL_WEIGHT + edge_cost_if_used(self._as_graph(), key)
        if kind == "h":
            self._h_cost[i][j] = cost
        else:
            self._v_cost[i][j] = cost

    def add_vertex_demand(self, tile: Tile, delta: int) -> None:
        super().add_vertex_demand(tile, delta)  # type: ignore[misc]
        self.perf_cache_updates += 1
        i, j = tile
        self._v_price[i][j] = vertex_price(self._as_graph(), tile)

    # -- indexed A* ------------------------------------------------------
    @paired("global-maze", backend="array")
    def astar_in_window(  # repro: allow-PAR006 graph is self here; caller passes stitch/profile
        self,
        src: Tile,
        dst: Tile,
        window: tuple[int, int, int, int],
        stitch_aware: bool,
        stats: dict[str, float],
        profile: bool = False,
    ) -> Optional[list[Tile]]:
        """Array-core twin of ``GlobalRouter._astar_in_window``.

        Same arguments (minus the graph, which is ``self``, plus the
        router's ``stitch_aware`` flag), same result, same
        ``maze_expansions`` accounting; called after the shared
        ``src == dst`` shortcut, so only the heap loop lives here.

        Byte-identity notes: states are ``((i, j), direction)`` encoded
        order-preservingly as integers; successors are generated in
        ``GlobalGraph.neighbors`` order (left, right, down, up); the
        expansion counter increments before the target test (the
        opposite of the detailed A* — both match their references);
        vertex prices are charged run-start, then run-end, then
        destination, in the reference order; relaxation keeps the
        ``1e-12`` slack.
        """
        lo_x, lo_y, hi_x, hi_y = window
        nx, ny = self.nx, self.ny
        h_cost = self._h_cost
        v_cost = self._v_cost
        v_price = self._v_price
        di, dj = dst
        dst_code = di * ny + dj

        # State id: (i * ny + j) * 3 + dircode with "" -> 0, "h" -> 1,
        # "v" -> 2 — monotonic in the ((i, j), dir) tuple order.
        start = (src[0] * ny + src[1]) * 3
        best: dict[int, float] = {start: 0.0}
        parent: dict[int, int] = {}
        heap: list[tuple[float, float, int]] = [
            (WL_WEIGHT * (abs(src[0] - di) + abs(src[1] - dj)), 0.0, start)
        ]
        goal = -1
        expansions = 0
        pops = 0
        best_get = best.get
        heappop = heapq.heappop
        heappush = heapq.heappush
        while heap:
            _f, g, state = heappop(heap)
            pops += 1
            if g > best_get(state, _INF):
                continue
            expansions += 1
            tc, dircode = divmod(state, 3)
            if tc == dst_code:
                goal = state
                break
            i, j = divmod(tc, ny)
            vertical_run = dircode == 2

            # Successors in GlobalGraph.neighbors order: (i-1, j),
            # (i+1, j), (i, j-1), (i, j+1).
            if i > 0 and lo_x <= i - 1 <= hi_x and lo_y <= j <= hi_y:
                step = h_cost[i - 1][j]
                if stitch_aware and vertical_run:
                    # A vertical run just ended at this tile.
                    step = step + v_price[i][j]
                candidate = g + step
                succ_state = (tc - ny) * 3 + 1
                if candidate < best_get(succ_state, _INF) - 1e-12:
                    best[succ_state] = candidate
                    parent[succ_state] = state
                    heappush(
                        heap,
                        (
                            candidate + WL_WEIGHT * (abs(i - 1 - di) + abs(j - dj)),
                            candidate,
                            succ_state,
                        ),
                    )
            if i + 1 < nx and lo_x <= i + 1 <= hi_x and lo_y <= j <= hi_y:
                step = h_cost[i][j]
                if stitch_aware and vertical_run:
                    step = step + v_price[i][j]
                candidate = g + step
                succ_state = (tc + ny) * 3 + 1
                if candidate < best_get(succ_state, _INF) - 1e-12:
                    best[succ_state] = candidate
                    parent[succ_state] = state
                    heappush(
                        heap,
                        (
                            candidate + WL_WEIGHT * (abs(i + 1 - di) + abs(j - dj)),
                            candidate,
                            succ_state,
                        ),
                    )
            if j > 0 and lo_x <= i <= hi_x and lo_y <= j - 1 <= hi_y:
                step = v_cost[i][j - 1]
                if stitch_aware:
                    if not vertical_run:
                        # A vertical run starts: line end at this tile.
                        step = step + v_price[i][j]
                    if tc - 1 == dst_code:
                        # The run will terminate at the target tile.
                        step = step + v_price[i][j - 1]
                candidate = g + step
                succ_state = (tc - 1) * 3 + 2
                if candidate < best_get(succ_state, _INF) - 1e-12:
                    best[succ_state] = candidate
                    parent[succ_state] = state
                    heappush(
                        heap,
                        (
                            candidate + WL_WEIGHT * (abs(i - di) + abs(j - 1 - dj)),
                            candidate,
                            succ_state,
                        ),
                    )
            if j + 1 < ny and lo_x <= i <= hi_x and lo_y <= j + 1 <= hi_y:
                step = v_cost[i][j]
                if stitch_aware:
                    if not vertical_run:
                        step = step + v_price[i][j]
                    if tc + 1 == dst_code:
                        step = step + v_price[i][j + 1]
                candidate = g + step
                succ_state = (tc + 1) * 3 + 2
                if candidate < best_get(succ_state, _INF) - 1e-12:
                    best[succ_state] = candidate
                    parent[succ_state] = state
                    heappush(
                        heap,
                        (
                            candidate + WL_WEIGHT * (abs(i - di) + abs(j + 1 - dj)),
                            candidate,
                            succ_state,
                        ),
                    )
        stats["maze_expansions"] = stats.get("maze_expansions", 0) + expansions
        if profile:
            # pushes == pops + len(heap) (heap invariant — the seed
            # entry counts as a push): matches the reference loop's
            # explicit count because the loops are step-identical.
            stats["perf_maze_heap_pushes"] = (
                stats.get("perf_maze_heap_pushes", 0) + pops + len(heap)
            )
            stats["perf_maze_heap_pops"] = (
                stats.get("perf_maze_heap_pops", 0) + pops
            )
        if goal < 0:
            return None
        states = [goal]
        while states[-1] != start:
            states.append(parent[states[-1]])
        states.reverse()
        return [divmod(s // 3, ny) for s in states]


class ArrayGlobalGraph(_CostCacheMixin, GlobalGraph):
    """:class:`GlobalGraph` plus cost caches and the indexed A* path."""

    def __init__(self, design: Design) -> None:
        super().__init__(design)
        self.refresh_cost_cache()

    def snapshot(self) -> GraphSnapshot:
        """Snapshot carrying cloned cost caches (array fast path)."""
        return ArrayGraphSnapshot(self)

    def shared_state_arrays(self) -> dict[str, "np.ndarray"]:
        """Base state plus the cost caches, as packed float64 arrays.

        Shipping the caches spares every worker a per-epoch
        ``refresh_cost_cache`` rebuild; ``float64 -> list`` round-trips
        are exact, so workers see bit-identical cache entries.
        """
        arrays = super().shared_state_arrays()
        nx, ny = self.nx, self.ny
        arrays["h_cost"] = np.asarray(
            self._h_cost, dtype=np.float64
        ).reshape(max(nx - 1, 0), ny)
        arrays["v_cost"] = np.asarray(
            self._v_cost, dtype=np.float64
        ).reshape(nx, max(ny - 1, 0))
        arrays["v_price"] = np.asarray(
            self._v_price, dtype=np.float64
        ).reshape(nx, ny)
        return arrays

    def import_shared_state(self, arrays: dict[str, "np.ndarray"]) -> None:
        super().import_shared_state(arrays)
        self._h_cost = arrays["h_cost"].tolist()
        self._v_cost = arrays["v_cost"].tolist()
        self._v_price = arrays["v_price"].tolist()


class ArrayGraphSnapshot(_CostCacheMixin, GraphSnapshot):
    """:class:`GraphSnapshot` whose searches run on cloned caches.

    Demand arrays are private copies (as in the base snapshot), so the
    caches are cloned rather than rebuilt — the live graph keeps its
    entries fresh through the demand mutators, making them exactly the
    per-batch state a rebuild would produce, at list-copy cost.
    """

    def __init__(self, base: ArrayGlobalGraph) -> None:
        super().__init__(base)
        self._h_cost = [row[:] for row in base._h_cost]
        self._v_cost = [row[:] for row in base._v_cost]
        self._v_price = [row[:] for row in base._v_price]
