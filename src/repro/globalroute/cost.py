"""Global routing congestion costs, Eqs. (1)–(3).

The cost of edge ``e_i`` is ``2^(d_e(i)/c_e(i)) - 1`` and the cost of
vertex ``v_j`` is ``2^(d_v(j)/c_v(j)) - 1``; a path costs the sum of
its edge and vertex costs.  Zero-capacity resources are priced as if
saturated plus the would-be demand, so the router avoids them without
needing special cases.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .graph import GlobalGraph, Tile

#: Cost assigned per unit of demand on a zero-capacity resource.
_ZERO_CAPACITY_PENALTY = 64.0

#: Scale of the upfront vertex (line-end) congestion price.  Kept below
#: 1 so that first-pass paths do not detour pre-emptively; rip-up
#: history does the targeted spreading.
VERTEX_WEIGHT = 0.3

#: Step penalty for a line end that would *overflow* its tile.  The
#: smooth Eq. (2) price barely distinguishes a full tile from an
#: overflowing one (2^(d/c)-1 grows slowly near d=c), so negotiation
#: needs this hard gradient to converge on large instances.
VERTEX_OVERFLOW_PENALTY = 6.0


def congestion_cost(demand: float, capacity: float) -> float:
    """The exponential congestion cost ``2^(d/c) - 1``."""
    if demand <= 0:
        return 0.0
    if capacity <= 0:
        return _ZERO_CAPACITY_PENALTY * demand
    return 2.0 ** (demand / capacity) - 1.0


def edge_cost(graph: GlobalGraph, key: tuple[str, int, int]) -> float:
    """ψ_e of Eq. (1) for the current demand on edge ``key``."""
    return congestion_cost(graph.edge_demand(key), graph.edge_capacity(key))


def edge_cost_if_used(graph: GlobalGraph, key: tuple[str, int, int]) -> float:
    """ψ_e after hypothetically adding one wire to edge ``key``.

    Pricing the *next* unit of demand (rather than the current one)
    makes the first wire over capacity pay the marginal congestion it
    creates, which is what sequential routing needs.
    """
    kind, i, j = key
    history = (
        graph.h_history[i, j] if kind == "h" else graph.v_history[i, j]
    )
    return (
        congestion_cost(
            graph.edge_demand(key) + 1,  # repro: allow-PAR004 array reads via price cache
            graph.edge_capacity(key),  # repro: allow-PAR004 array reads via price cache
        )
        + history
    )


def vertex_cost(graph: GlobalGraph, tile: Tile) -> float:
    """ψ_v of Eq. (2) for the current line-end demand on ``tile``."""
    i, j = tile
    return congestion_cost(
        float(graph.vertex_demand[i, j]), float(graph.vertex_capacity[i, j])
    )


def vertex_cost_if_used(graph: GlobalGraph, tile: Tile) -> float:
    """ψ_v after hypothetically adding one line end to ``tile``."""
    i, j = tile
    return congestion_cost(
        float(graph.vertex_demand[i, j]) + 1.0,
        float(graph.vertex_capacity[i, j]),
    )


def vertex_price(graph: GlobalGraph, tile: Tile) -> float:
    """Full A* step price of a line end landing on ``tile``.

    The base Eq. (2) price (kept mild so uncongested paths stay short)
    plus the negotiated history term and the hard overflow step; the
    global router charges it where a vertical run starts or ends.
    """
    i, j = tile
    price = VERTEX_WEIGHT * vertex_cost_if_used(graph, tile) + float(
        graph.vertex_history[i, j]
    )
    if graph.vertex_demand[i, j] + 1 > graph.vertex_capacity[i, j]:
        price += VERTEX_OVERFLOW_PENALTY
    return price


def congestion_cost_array(demand, capacity):
    """Vectorized :func:`congestion_cost` over demand/capacity arrays.

    Returns a float64 array with the same piecewise definition:
    ``0`` where demand is non-positive, the linear zero-capacity
    penalty where capacity is non-positive, and ``2^(d/c) - 1``
    elsewhere.  ``numpy.exp2`` may differ from the scalar kernel's
    CPython ``2.0 ** x`` in the last ulp, so this kernel serves bulk
    analysis (congestion maps, overflow summaries); the array engine's
    cost *caches* call the scalar functions per entry precisely
    because the engines must agree bit for bit (see
    ``docs/performance.md``).
    """
    d = np.asarray(demand, dtype=np.float64)
    c = np.asarray(capacity, dtype=np.float64)
    d, c = np.broadcast_arrays(d, c)
    out = np.zeros(d.shape, dtype=np.float64)
    positive = d > 0
    zero_cap = positive & (c <= 0)
    out[zero_cap] = _ZERO_CAPACITY_PENALTY * d[zero_cap]
    smooth = positive & (c > 0)
    # Extreme demand/capacity ratios saturate to +inf (2^1024 overflows
    # float64); that is the intended reading for a congestion map, so
    # the overflow warning is noise.
    with np.errstate(over="ignore"):
        out[smooth] = np.exp2(d[smooth] / c[smooth]) - 1.0
    return out


def path_cost(
    graph: GlobalGraph,
    tiles: Sequence[Tile],
    include_vertex_cost: bool = True,
) -> float:
    """Ψ(P) of Eq. (3) for an already-routed tile path."""
    total = 0.0
    for a, b in zip(tiles, tiles[1:]):
        total += edge_cost(graph, graph.edge_between(a, b))
    if include_vertex_cost:
        for tile in tiles:
            total += vertex_cost(graph, tile)
    return total
