"""Global routing congestion costs, Eqs. (1)–(3).

The cost of edge ``e_i`` is ``2^(d_e(i)/c_e(i)) - 1`` and the cost of
vertex ``v_j`` is ``2^(d_v(j)/c_v(j)) - 1``; a path costs the sum of
its edge and vertex costs.  Zero-capacity resources are priced as if
saturated plus the would-be demand, so the router avoids them without
needing special cases.
"""

from __future__ import annotations

from collections.abc import Sequence

from .graph import GlobalGraph, Tile

#: Cost assigned per unit of demand on a zero-capacity resource.
_ZERO_CAPACITY_PENALTY = 64.0


def congestion_cost(demand: float, capacity: float) -> float:
    """The exponential congestion cost ``2^(d/c) - 1``."""
    if demand <= 0:
        return 0.0
    if capacity <= 0:
        return _ZERO_CAPACITY_PENALTY * demand
    return 2.0 ** (demand / capacity) - 1.0


def edge_cost(graph: GlobalGraph, key: tuple[str, int, int]) -> float:
    """ψ_e of Eq. (1) for the current demand on edge ``key``."""
    return congestion_cost(graph.edge_demand(key), graph.edge_capacity(key))


def edge_cost_if_used(graph: GlobalGraph, key: tuple[str, int, int]) -> float:
    """ψ_e after hypothetically adding one wire to edge ``key``.

    Pricing the *next* unit of demand (rather than the current one)
    makes the first wire over capacity pay the marginal congestion it
    creates, which is what sequential routing needs.
    """
    kind, i, j = key
    history = (
        graph.h_history[i, j] if kind == "h" else graph.v_history[i, j]
    )
    return (
        congestion_cost(graph.edge_demand(key) + 1, graph.edge_capacity(key))
        + history
    )


def vertex_cost(graph: GlobalGraph, tile: Tile) -> float:
    """ψ_v of Eq. (2) for the current line-end demand on ``tile``."""
    i, j = tile
    return congestion_cost(
        float(graph.vertex_demand[i, j]), float(graph.vertex_capacity[i, j])
    )


def vertex_cost_if_used(graph: GlobalGraph, tile: Tile) -> float:
    """ψ_v after hypothetically adding one line end to ``tile``."""
    i, j = tile
    return congestion_cost(
        float(graph.vertex_demand[i, j]) + 1.0,
        float(graph.vertex_capacity[i, j]),
    )


def path_cost(
    graph: GlobalGraph,
    tiles: Sequence[Tile],
    include_vertex_cost: bool = True,
) -> float:
    """Ψ(P) of Eq. (3) for an already-routed tile path."""
    total = 0.0
    for a, b in zip(tiles, tiles[1:]):
        total += edge_cost(graph, graph.edge_between(a, b))
    if include_vertex_cost:
        for tile in tiles:
            total += vertex_cost(graph, tile)
    return total
