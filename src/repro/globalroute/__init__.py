"""Stitch-aware global routing (Section III-A)."""

from .cost import (
    congestion_cost,
    edge_cost,
    edge_cost_if_used,
    path_cost,
    vertex_cost,
    vertex_cost_if_used,
)
from .graph import GlobalGraph, Tile, TileSpan
from .router import (
    GlobalRoute,
    GlobalRouter,
    GlobalRoutingResult,
    vertical_run_line_ends,
)

__all__ = [
    "GlobalGraph",
    "GlobalRoute",
    "GlobalRouter",
    "GlobalRoutingResult",
    "Tile",
    "TileSpan",
    "congestion_cost",
    "edge_cost",
    "edge_cost_if_used",
    "path_cost",
    "vertex_cost",
    "vertex_cost_if_used",
    "vertical_run_line_ends",
]
