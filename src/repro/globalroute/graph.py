"""The global routing graph with MEBL resource estimation.

A routing plane is divided into global tiles; each tile is a vertex and
adjacent tiles are connected by edges (Fig. 7a).  MEBL changes the
resource model in two ways (Section III-A):

* **edge capacity** in the vertical direction shrinks because the
  vertical track occupied by a stitching line is unusable (vertical
  routing constraint, Fig. 7b);
* each tile also carries a **vertex capacity** — the number of vertical
  tracks *not* in stitch unfriendly regions — limiting how many
  vertical-segment line ends may lie in the tile without risking short
  polygons.

Demands are tracked per edge (wires crossing the boundary) and per
vertex (line ends lying in the tile).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

import numpy as np

from ..layout import Design


Tile = tuple[int, int]


@dataclasses.dataclass(frozen=True)
class TileSpan:
    """Grid extent of one tile: x columns [x_lo, x_hi], y rows [y_lo, y_hi]."""

    x_lo: int
    x_hi: int
    y_lo: int
    y_hi: int


class GlobalGraph:
    """Tile graph with edge and vertex capacities/demands.

    Edge arrays are indexed as:

    * ``h_*[i, j]`` — the edge between tiles ``(i, j)`` and ``(i+1, j)``
      (a wire crossing it runs horizontally);
    * ``v_*[i, j]`` — the edge between tiles ``(i, j)`` and ``(i, j+1)``
      (a wire crossing it runs vertically).
    """

    def __init__(self, design: Design) -> None:
        self.design = design
        tile = design.config.tile_size
        self.tile_size = tile
        self.nx, self.ny = self.grid_shape(design)

        tech = design.technology
        stitches = design.stitches
        assert stitches is not None
        num_h_layers = len(tech.horizontal_layers)
        num_v_layers = len(tech.vertical_layers)

        # Per-tile-column vertical track counts.
        v_usable = np.zeros(self.nx, dtype=np.int64)
        v_friendly = np.zeros(self.nx, dtype=np.int64)
        for i in range(self.nx):
            span = self.tile_span((i, 0))
            v_usable[i] = stitches.usable_vertical_tracks(span.x_lo, span.x_hi)
            v_friendly[i] = stitches.friendly_vertical_tracks(
                span.x_lo, span.x_hi
            )
        # Per-tile-row horizontal track counts.
        h_tracks = np.zeros(self.ny, dtype=np.int64)
        for j in range(self.ny):
            span = self.tile_span((0, j))
            h_tracks[j] = span.y_hi - span.y_lo + 1

        # Edge capacities.  A horizontal edge at row j carries wires on
        # the horizontal tracks of that row across all horizontal
        # layers; a vertical edge in column i carries wires on the
        # usable vertical tracks across all vertical layers.
        self.h_capacity = np.tile(
            (h_tracks * num_h_layers)[None, :], (max(self.nx - 1, 0), 1)
        ).astype(np.int64)
        self.v_capacity = np.tile(
            (v_usable * num_v_layers)[:, None], (1, max(self.ny - 1, 0))
        ).astype(np.int64)
        # Vertex (line-end) capacity of each tile.
        self.vertex_capacity = np.tile(
            (v_friendly * num_v_layers)[:, None], (1, self.ny)
        ).astype(np.int64)

        self.h_demand = np.zeros_like(self.h_capacity)
        self.v_demand = np.zeros_like(self.v_capacity)
        self.vertex_demand = np.zeros_like(self.vertex_capacity)
        self.h_history = np.zeros(self.h_capacity.shape, dtype=np.float64)
        self.v_history = np.zeros(self.v_capacity.shape, dtype=np.float64)
        self.vertex_history = np.zeros(
            self.vertex_capacity.shape, dtype=np.float64
        )

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def snapshot(self) -> "GlobalGraph":
        """Private-demand snapshot for speculative routing.

        Factory hook for the engine seam:
        :class:`~repro.engine.ArrayGlobalGraph` overrides it to hand
        out snapshots carrying cloned cost caches, so the parallel
        router never needs to know which engine built the graph.
        """
        from .overlay import GraphSnapshot  # local: overlay imports graph

        return GraphSnapshot(self)

    # ------------------------------------------------------------------
    # Shared-memory state transport (the process-pool backend)
    # ------------------------------------------------------------------
    #: The per-stage *mutable* arrays a process-pool worker must track.
    #: Capacities are construction-time constants every worker already
    #: holds, so they never travel.
    _SHARED_STATE_KEYS = (
        "h_demand",
        "v_demand",
        "vertex_demand",
        "h_history",
        "v_history",
        "vertex_history",
    )

    def shared_state_arrays(self) -> dict[str, "np.ndarray"]:
        """The mutable routing state, keyed for shared-memory export.

        The engine seam's second factory-style hook:
        :class:`~repro.engine.ArrayGlobalGraph` extends the dict with
        its cost caches so workers skip the full cache rebuild.
        """
        return {key: getattr(self, key) for key in self._SHARED_STATE_KEYS}

    def import_shared_state(self, arrays: dict[str, "np.ndarray"]) -> None:
        """Overwrite the mutable state from exported views, in place.

        In-place copies keep any outstanding snapshot references (which
        borrow the history arrays) aimed at the live data.
        """
        for key in self._SHARED_STATE_KEYS:
            np.copyto(getattr(self, key), arrays[key])

    # ------------------------------------------------------------------
    # Tile geometry
    # ------------------------------------------------------------------
    @classmethod
    def grid_shape(cls, design: Design) -> tuple[int, int]:
        """Tile grid dimensions ``(nx, ny)`` the graph would have.

        Lets callers (the multilevel scheme in particular) size the
        hierarchy without building the capacity arrays of a full graph.
        """
        tile = design.config.tile_size
        nx = max(1, (design.width + tile - 1) // tile)
        ny = max(1, (design.height + tile - 1) // tile)
        return nx, ny

    # ------------------------------------------------------------------
    def tile_span(self, tile: Tile) -> TileSpan:
        """Grid extent covered by ``tile``."""
        i, j = tile
        t = self.tile_size
        return TileSpan(
            x_lo=i * t,
            x_hi=min((i + 1) * t, self.design.width) - 1,
            y_lo=j * t,
            y_hi=min((j + 1) * t, self.design.height) - 1,
        )

    def tile_of(self, x: int, y: int) -> Tile:
        """The tile containing grid cell ``(x, y)``."""
        if not (0 <= x < self.design.width and 0 <= y < self.design.height):
            raise ValueError(f"cell ({x}, {y}) outside die")
        return (
            min(x // self.tile_size, self.nx - 1),
            min(y // self.tile_size, self.ny - 1),
        )

    def tiles(self) -> Iterator[Tile]:
        """All tiles in row-major order."""
        for j in range(self.ny):
            for i in range(self.nx):
                yield (i, j)

    def neighbors(self, tile: Tile) -> list[Tile]:
        """4-adjacent tiles inside the grid."""
        i, j = tile
        out = []
        if i > 0:
            out.append((i - 1, j))
        if i + 1 < self.nx:
            out.append((i + 1, j))
        if j > 0:
            out.append((i, j - 1))
        if j + 1 < self.ny:
            out.append((i, j + 1))
        return out

    # ------------------------------------------------------------------
    # Edge bookkeeping
    # ------------------------------------------------------------------
    def edge_between(self, a: Tile, b: Tile) -> tuple[str, int, int]:
        """Canonical (kind, i, j) key of the edge between adjacent tiles."""
        (ia, ja), (ib, jb) = a, b
        if ja == jb and abs(ia - ib) == 1:
            return ("h", min(ia, ib), ja)
        if ia == ib and abs(ja - jb) == 1:
            return ("v", ia, min(ja, jb))
        raise ValueError(  # repro: allow-PAR004 adjacency guard; array core indexes directly
            f"tiles {a} and {b} are not adjacent"
        )

    def edge_capacity(self, key: tuple[str, int, int]) -> int:
        """Capacity of the edge ``key``."""
        kind, i, j = key
        return int(self.h_capacity[i, j] if kind == "h" else self.v_capacity[i, j])

    def edge_demand(self, key: tuple[str, int, int]) -> int:
        """Current demand of the edge ``key``."""
        kind, i, j = key
        return int(self.h_demand[i, j] if kind == "h" else self.v_demand[i, j])

    def add_edge_demand(self, key: tuple[str, int, int], delta: int) -> None:
        """Adjust the demand of edge ``key`` by ``delta``."""
        kind, i, j = key
        if kind == "h":
            self.h_demand[i, j] += delta
        else:
            self.v_demand[i, j] += delta

    def add_vertex_demand(self, tile: Tile, delta: int) -> None:
        """Adjust the line-end demand of ``tile`` by ``delta``."""
        self.vertex_demand[tile[0], tile[1]] += delta

    # ------------------------------------------------------------------
    # Overflow metrics (Table IV)
    # ------------------------------------------------------------------
    def edge_overflow(self) -> int:
        """Total wire overflow over all edges."""
        h = np.maximum(self.h_demand - self.h_capacity, 0).sum()
        v = np.maximum(self.v_demand - self.v_capacity, 0).sum()
        return int(h + v)

    def total_vertex_overflow(self) -> int:
        """TVOF: summed line-end overflow over all tiles."""
        return int(
            np.maximum(self.vertex_demand - self.vertex_capacity, 0).sum()
        )

    def max_vertex_overflow(self) -> int:
        """MVOF: worst line-end overflow among all tiles."""
        if self.vertex_demand.size == 0:
            return 0
        return int(
            np.maximum(self.vertex_demand - self.vertex_capacity, 0).max()
        )
