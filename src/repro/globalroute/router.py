"""Sequential congestion-driven global routing.

Nets are decomposed into two-pin subnets (Prim spanning tree over the
pins), ordered bottom-up (nets local to smaller tile neighbourhoods
first, per the multilevel scheme of Section II-B), and routed by A* on
the tile graph.  In stitch-aware mode the path cost follows Eq. (3):
edge congestion plus the vertex (line-end) congestion term; the
baseline mode — standing in for NTUgr [5] — prices edges only.

A negotiation-style rip-up and re-route loop with history costs cleans
up edge overflow, mirroring NTUgr's overflow reduction.
"""

from __future__ import annotations

import dataclasses
import heapq
import time
from collections.abc import Sequence
from typing import Optional, Union

from ..algorithms import steiner_tree_edges
from ..layout import Design, Net
from ..observe import Span, Tracer, ensure
from ..parallel import (
    BatchExecutor,
    ProcessBatchExecutor,
    SharedArraySpec,
    SharedStateChannel,
    plan_batches,
)
from .cost import (
    VERTEX_OVERFLOW_PENALTY,  # noqa: F401  (re-export: moved to .cost)
    VERTEX_WEIGHT,  # noqa: F401  (re-export: moved to .cost)
    edge_cost_if_used,
    vertex_price,
)
from ..analysis.context import context
from ..analysis.pairing import paired
from .graph import GlobalGraph, Tile
from .overlay import windows_hit

#: Weight of one tile hop in the A* cost; small so congestion dominates
#: but paths stay short when congestion is zero.
WL_WEIGHT = 0.1

#: Tile margin of the first (windowed) A* attempt around a subnet's
#: endpoints; doubles as the batch planner's expansion: two nets whose
#: bboxes stay this far apart cannot read each other's demand.
ASTAR_WINDOW_MARGIN = 4

#: Either batch-executor backend (``RouterConfig(executor=...)``).
AnyPool = Union[BatchExecutor, ProcessBatchExecutor]

#: Per-process worker state installed by :func:`_process_worker_init`
#: (a module global because pool tasks must be picklable by reference).
_PROC_CONTEXT: Optional[dict] = None


@context("worker-process")
def _process_worker_init(
    params: dict, graph: GlobalGraph, handle: tuple
) -> None:
    """Pool initializer: adopt the global-routing stage in a worker.

    ``graph`` arrives by fork inheritance (or pickle under spawn) at
    whatever stage state the parent had last published; the shared-
    state channel then keeps it current — the first ``sync`` of a
    late-forked worker simply re-imports the full arrays, which is
    idempotent over the inherited state.
    """
    global _PROC_CONTEXT
    _PROC_CONTEXT = {
        "router": GlobalRouter(**params),
        "graph": graph,
        "channel": SharedStateChannel.attach(handle),
    }


@context(
    "worker-process",
    reads=("channel",),
    writes=("global.demand", "global.history", "engine.cache"),
)
def _process_worker_task(
    net_name: str,
) -> tuple[
    Optional[list[list[Tile]]],
    dict[str, float],
    list[tuple[int, int, int, int]],
]:
    """Pool task: speculatively route one net in a worker process.

    Returns the route's tile paths rather than a :class:`GlobalRoute`
    — the parent re-wraps them around its own :class:`Net` object, so
    net identity on the submitting side is untouched by pickling.
    """
    ctx = _PROC_CONTEXT
    assert ctx is not None, "worker used before _process_worker_init"
    synced = ctx["channel"].sync()
    if synced is not None:
        arrays, _frames = synced
        ctx["graph"].import_shared_state(arrays)
    graph = ctx["graph"]
    net = graph.design.netlist[net_name]
    route, stats, windows = ctx["router"]._route_speculative(graph, net)
    paths = None if route is None else route.paths
    return paths, stats, windows


@dataclasses.dataclass
class GlobalRoute:
    """Global route of one net: one tile path per two-pin subnet."""

    net: Net
    paths: list[list[Tile]]

    @property
    def wirelength_tiles(self) -> int:
        """Total tile hops over all subnet paths."""
        return sum(len(p) - 1 for p in self.paths)


@dataclasses.dataclass
class GlobalRoutingResult:
    """Outcome of global routing a design."""

    design: Design
    graph: GlobalGraph
    routes: dict[str, GlobalRoute]
    failed: list[str]
    cpu_seconds: float

    @property
    def wirelength(self) -> int:
        """Total wirelength in grid pitches (tile hops x tile size)."""
        hops = sum(r.wirelength_tiles for r in self.routes.values())
        return hops * self.graph.tile_size

    @property
    def total_vertex_overflow(self) -> int:
        """TVOF of Table IV."""
        return self.graph.total_vertex_overflow()

    @property
    def max_vertex_overflow(self) -> int:
        """MVOF of Table IV."""
        return self.graph.max_vertex_overflow()


class GlobalRouter:
    """Two-pin-decomposition maze router over a :class:`GlobalGraph`.

    Args:
        stitch_aware: include the vertex (line-end) congestion term of
            Eqs. (2)–(3).  Off reproduces the wire-density-only router
            compared against in Table IV.
        ripup_rounds: negotiation rounds after the initial pass.
        steiner: decompose multi-pin nets over a greedy 1-Steiner tree
            instead of the plain spanning tree (optional wirelength
            improvement; the paper's experiments use the spanning
            tree, so this defaults to off).
        workers: worker threads for net-batch routing.  ``1`` keeps
            the serial loop; ``N > 1`` routes bbox-disjoint net batches
            speculatively and merges them in canonical order, which is
            provably result-identical to the serial loop (see
            ``docs/parallelism.md``).
        sanitize: route speculative nets against instrumented
            snapshots that audit every demand-array access and verify
            it against the declared A* windows, raising
            :class:`~repro.analysis.SanitizerViolation` on any
            undeclared access (see ``docs/static_analysis.md``).
        engine: concrete engine name — ``"object"`` routes on the
            reference :class:`GlobalGraph`, ``"array"`` on the
            :class:`~repro.engine.ArrayGlobalGraph` with incrementally
            maintained cost caches.  The two produce byte-identical
            results (``docs/performance.md``); resolve ``"auto"`` with
            :func:`repro.config.resolve_engine` before constructing
            the router.
        profile: ``"off"`` / ``"counters"`` / ``"full"``.  ``"counters"``
            flushes engine-level ``perf_*`` counters (maze heap
            pushes/pops, snapshot clones, cost-cache refreshes and
            incremental updates) per pass and negotiation round;
            ``"full"`` additionally reports per-net commits through
            :meth:`Tracer.progress` (see ``docs/observability.md``).
        executor: pool backend for ``workers > 1`` — ``"thread"``
            (in-process, state shared for free) or ``"process"``
            (multiprocessing pool; the graph's mutable arrays are
            published to shared memory before each batch and workers
            ship back the same speculative results).  Byte-identical
            output either way; resolve ``"auto"`` with
            :func:`repro.config.resolve_executor` before constructing
            the router.
    """

    def __init__(
        self,
        stitch_aware: bool = True,
        ripup_rounds: int = 8,
        steiner: bool = False,
        workers: int = 1,
        sanitize: bool = False,
        engine: str = "object",
        profile: str = "off",
        executor: str = "thread",
    ) -> None:
        if engine not in ("object", "array"):
            raise ValueError(
                f"engine must be 'object' or 'array', got {engine!r}"
            )
        if profile not in ("off", "counters", "full"):
            raise ValueError(
                f"profile must be 'off', 'counters' or 'full', got {profile!r}"
            )
        if executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        self.stitch_aware = stitch_aware
        self.ripup_rounds = ripup_rounds
        self.steiner = steiner
        self.workers = workers
        self.sanitize = sanitize
        self.engine = engine
        self.profile = profile
        self.executor = executor
        self._profiling = profile != "off"
        self._tracer: Optional[Tracer] = None
        self._proc_channel: Optional[SharedStateChannel] = None

    # ------------------------------------------------------------------
    def route(
        self, design: Design, tracer: Optional[Tracer] = None
    ) -> GlobalRoutingResult:
        """Globally route every net of ``design``.

        Spans recorded on ``tracer``: tile-graph build, the initial
        bottom-up pass, and one span per negotiation round with the
        edge/vertex overflow left after it (the Table IV quantities).
        """
        tracer = ensure(tracer)
        self._tracer = tracer if self.profile == "full" else None
        start = time.perf_counter()
        pool: Optional[AnyPool] = None
        if self.workers > 1:
            on_task = None
            if self.profile == "full":
                # Per-task fan-in: the executor reports completions on
                # the calling (main) thread in submission order, so the
                # stream stays canonically ordered.
                def on_task(index: int, busy: float) -> None:
                    tracer.progress(
                        "task",
                        stage="global",
                        index=index,
                        busy_seconds=round(busy, 6),
                    )

            if self.executor == "process":
                pool = ProcessBatchExecutor(self.workers, on_task=on_task)
            else:
                pool = BatchExecutor(self.workers, on_task=on_task)
        try:
            with tracer.span("global-route") as stage:
                with tracer.span("graph-build"):
                    if self.engine == "array":
                        from ..engine import ArrayGlobalGraph

                        graph: GlobalGraph = ArrayGlobalGraph(design)
                    else:
                        graph = GlobalGraph(design)
                order = self._bottom_up_order(design, graph)

                routes: dict[str, GlobalRoute] = {}
                failed: list[str] = []
                with tracer.span("initial-pass") as span:
                    stats: dict[str, float] = {}
                    self._route_many(
                        graph, order, routes, failed, stats, pool, span
                    )
                    span.count(
                        "maze_expansions", stats.get("maze_expansions", 0)
                    )
                    self._flush_stage_counters(span, stats)
                    span.count("nets_routed", len(routes))
                    span.gauge("edge_overflow", graph.edge_overflow())
                    span.gauge(
                        "vertex_overflow", graph.total_vertex_overflow()
                    )

                for round_index in range(self.ripup_rounds):
                    victims = self._overflow_victims(graph, routes)
                    if not victims:
                        break
                    with tracer.span(
                        "negotiation-round", round=round_index
                    ) as span:
                        stats = {}
                        self._bump_history(graph)
                        for name in victims:
                            self._unplace(graph, routes.pop(name))
                        victim_nets = [
                            design.netlist[name] for name in victims
                        ]
                        self._route_many(
                            graph, victim_nets, routes, failed, stats,
                            pool, span,
                        )
                        span.count(
                            "maze_expansions", stats.get("maze_expansions", 0)
                        )
                        self._flush_stage_counters(span, stats)
                        span.count("ripup_victims", len(victims))
                        span.gauge("edge_overflow", graph.edge_overflow())
                        span.gauge(
                            "vertex_overflow", graph.total_vertex_overflow()
                        )
                stage.count("failed_nets", len(failed))
                if self.sanitize:
                    # Explicit zero: a clean sanitized run reports the
                    # counter so rollups can assert on its presence.
                    stage.count("sanitize_violations", 0)
                if pool is not None:
                    stage.count("parallel_tasks", pool.tasks)
                    stage.gauge(
                        "worker_utilization", round(pool.utilization(), 4)
                    )
                if self._proc_channel is not None:
                    stage.count(
                        "parallel_ipc_publishes", self._proc_channel.publishes
                    )
                    stage.count(
                        "parallel_ipc_publish_bytes",
                        self._proc_channel.published_bytes,
                    )
                if self._profiling:
                    # Cost-cache churn lives on the array graph (the
                    # object engine has no caches — counters absent).
                    refreshes = getattr(graph, "perf_cache_refreshes", None)
                    if refreshes is not None:
                        stage.count("perf_cache_refreshes", refreshes)
                        stage.count(
                            "perf_cache_updates",
                            getattr(graph, "perf_cache_updates", 0),
                        )
        finally:
            self._tracer = None
            if pool is not None:
                pool.shutdown()
            if self._proc_channel is not None:
                # After shutdown: no worker still maps the segments.
                self._proc_channel.unlink()
                self._proc_channel = None

        return GlobalRoutingResult(
            design=design,
            graph=graph,
            routes=routes,
            failed=failed,
            cpu_seconds=time.perf_counter() - start,
        )

    @staticmethod
    def _flush_stage_counters(span: Span, stats: dict[str, float]) -> None:
        """Report accumulated sanitizer/profiling counters on ``span``.

        Flushed (and zeroed) per pass and per negotiation round, so the
        ``perf_*`` engine counters land on the round that incurred them.
        """
        for name in sorted(stats):
            if name.startswith(("sanitize_", "perf_")):
                span.count(name, stats[name])
                stats[name] = 0

    # ------------------------------------------------------------------
    # Net-batch scheduling (workers > 1)
    # ------------------------------------------------------------------
    @context("canonical")
    def _route_many(
        self,
        graph: GlobalGraph,
        nets: Sequence[Net],
        routes: dict[str, GlobalRoute],
        failed: list[str],
        stats: dict[str, float],
        pool: Optional[AnyPool],
        span: Span,
    ) -> None:
        """Route ``nets`` in order, batching onto the pool when given.

        The serial loop and the batched loop commit identical state:
        batches hold bbox-disjoint nets routed speculatively against a
        :class:`GraphSnapshot`, then merged in canonical net order —
        a net whose search windows touch an earlier batch-mate's
        placed tiles is discarded and re-routed on the live graph, so
        every committed route (and every committed counter) is the one
        the serial loop would have produced.
        """
        if pool is None or len(nets) < 2:
            for net in nets:
                route = self._route_net(graph, net, stats)
                self._commit(routes, failed, net, route)
                if self._tracer is not None:
                    self._tracer.progress(
                        "net",
                        stage="global",
                        net=net.name,
                        routed=route is not None,
                    )
            return

        plan = plan_batches(
            nets,
            rect_of=lambda n: self._net_tile_rect(graph, n),
            expand=ASTAR_WINDOW_MARGIN,
        )
        conflicts = 0
        for batch in plan:
            if len(batch) == 1:
                net = batch[0]
                self._commit(
                    routes, failed, net, self._route_net(graph, net, stats)
                )
                continue
            results = self._speculate_batch(graph, batch, pool)
            if self._profiling:
                # One demand snapshot per speculative net (counted on
                # the main thread; workers never touch shared stats).
                stats["perf_snapshot_clones"] = (
                    stats.get("perf_snapshot_clones", 0) + len(batch)
                )
            written: set = set()
            for net, (route, net_stats, windows) in zip(batch, results):
                if windows_hit(windows, written):
                    # The speculative search read state an earlier
                    # batch-mate has since changed; redo it serially.
                    conflicts += 1
                    route = self._route_net(graph, net, stats)
                else:
                    for name, value in net_stats.items():
                        stats[name] = stats.get(name, 0) + value
                    if route is not None:
                        for path in route.paths:
                            self._place_path(graph, path)
                if route is not None:
                    written.update(t for p in route.paths for t in p)
                self._commit(routes, failed, net, route)
                if self._tracer is not None:
                    self._tracer.progress(
                        "net",
                        stage="global",
                        net=net.name,
                        routed=route is not None,
                    )
        span.count("parallel_batches", len(plan))
        span.count("parallel_conflicts", conflicts)
        span.gauge("parallel_max_batch_width", plan.max_width)
        span.gauge("parallel_mean_batch_width", round(plan.mean_width, 3))

    @context("canonical")
    def _speculate_batch(
        self,
        graph: GlobalGraph,
        batch: Sequence[Net],
        pool: AnyPool,
    ) -> list[
        tuple[
            Optional[GlobalRoute],
            dict[str, float],
            list[tuple[int, int, int, int]],
        ]
    ]:
        """Run one conflict-free batch on whichever pool backend is up.

        The thread pool closes over the live graph; the process pool
        first publishes the graph's mutable arrays to shared memory
        (the live graph is frozen while the batch is in flight, so one
        publish per batch is exact), then ships net names only.
        """
        if isinstance(pool, ProcessBatchExecutor):
            channel = self._ensure_process_backend(graph, pool)
            channel.publish(graph.shared_state_arrays())
            raw = pool.run([net.name for net in batch])
            results = []
            for net, (paths, net_stats, windows) in zip(batch, raw):
                route = (
                    None
                    if paths is None
                    else GlobalRoute(net=net, paths=paths)
                )
                results.append((route, net_stats, windows))
            return results
        return pool.run(
            lambda net: self._route_speculative(graph, net), batch
        )

    def _ensure_process_backend(
        self, graph: GlobalGraph, pool: ProcessBatchExecutor
    ) -> SharedStateChannel:
        """Lazily create the shared-state channel and configure the pool."""
        if self._proc_channel is None:
            specs = [
                SharedArraySpec(key, array.shape, array.dtype.str)
                for key, array in graph.shared_state_arrays().items()
            ]
            self._proc_channel = SharedStateChannel.create("global", specs)
            params = dict(
                stitch_aware=self.stitch_aware,
                ripup_rounds=self.ripup_rounds,
                steiner=self.steiner,
                workers=1,
                sanitize=self.sanitize,
                engine=self.engine,
                profile=self.profile,
            )
            pool.configure(
                task=_process_worker_task,
                initializer=_process_worker_init,
                initargs=(params, graph, self._proc_channel.handle),
            )
        return self._proc_channel

    @context("speculative")
    def _route_speculative(
        self, graph: GlobalGraph, net: Net
    ) -> tuple[Optional[GlobalRoute], dict[str, float], list[tuple[int, int, int, int]]]:
        """Worker body: route one net against a demand snapshot.

        Returns the route (not yet placed on the live graph), the
        net's local search counters, and every A* window searched —
        the declared read region the merge loop validates.
        """
        stats: dict[str, float] = {}
        windows: list[tuple[int, int, int, int]] = []
        if self.sanitize:
            # Imported lazily: repro.analysis is a downstream tool
            # layer; the routers must not depend on it by default.
            from ..analysis.sanitize import SanitizedGraphSnapshot

            snapshot = SanitizedGraphSnapshot(graph)
            route = self._route_net(snapshot, net, stats, windows)
            snapshot.verify(windows, stats)
        else:
            snapshot = graph.snapshot()
            route = self._route_net(snapshot, net, stats, windows)
        return route, stats, windows

    def _net_tile_rect(
        self, graph: GlobalGraph, net: Net
    ) -> tuple[int, int, int, int]:
        """Inclusive tile-space bbox of the net's pins."""
        box = net.bbox
        lo = graph.tile_of(box.lo_x, box.lo_y)
        hi = graph.tile_of(box.hi_x, box.hi_y)
        return (lo[0], lo[1], hi[0], hi[1])

    @staticmethod
    def _commit(
        routes: dict[str, GlobalRoute],
        failed: list[str],
        net: Net,
        route: Optional[GlobalRoute],
    ) -> None:
        """Record one routing outcome exactly as the serial loop does."""
        if route is None:
            failed.append(net.name)
        else:
            routes[net.name] = route

    # ------------------------------------------------------------------
    # Net ordering and decomposition
    # ------------------------------------------------------------------
    def _bottom_up_order(
        self, design: Design, graph: GlobalGraph
    ) -> list[Net]:
        """Local nets first: sort by bbox extent in tiles (Section II-B)."""

        def level(net: Net) -> tuple[int, int, str]:
            box = net.bbox
            lo = graph.tile_of(box.lo_x, box.lo_y)
            hi = graph.tile_of(box.hi_x, box.hi_y)
            extent = max(hi[0] - lo[0], hi[1] - lo[1])
            return (extent, net.hpwl, net.name)

        return sorted(design.netlist, key=level)

    def two_pin_subnets(
        self, net: Net, graph: GlobalGraph
    ) -> list[tuple[Tile, Tile]]:
        """Two-pin decomposition over the net's pin tiles.

        Prim spanning tree by default; with ``steiner=True`` the edges
        come from a greedy 1-Steiner tree over the tile coordinates
        (added Steiner tiles become ordinary path endpoints).
        """
        tiles: list[Tile] = []
        seen = set()
        for pin in net.pins:
            t = graph.tile_of(pin.location.x, pin.location.y)
            if t not in seen:
                seen.add(t)
                tiles.append(t)
        if len(tiles) < 2:
            return []
        if self.steiner and len(tiles) > 2:
            return [tuple(e) for e in steiner_tree_edges(tiles)]
        in_tree = {0}
        edges: list[tuple[Tile, Tile]] = []
        dist = {
            idx: (abs(t[0] - tiles[0][0]) + abs(t[1] - tiles[0][1]), 0)
            for idx, t in enumerate(tiles)
        }
        while len(in_tree) < len(tiles):
            best = min(
                (idx for idx in range(len(tiles)) if idx not in in_tree),
                key=lambda idx: dist[idx][0],
            )
            parent = dist[best][1]
            edges.append((tiles[parent], tiles[best]))
            in_tree.add(best)
            for idx, t in enumerate(tiles):
                if idx in in_tree:
                    continue
                d = abs(t[0] - tiles[best][0]) + abs(t[1] - tiles[best][1])
                if d < dist[idx][0]:
                    dist[idx] = (d, best)
        return edges

    # ------------------------------------------------------------------
    # Single-net routing
    # ------------------------------------------------------------------
    def _route_net(
        self,
        graph: GlobalGraph,
        net: Net,
        stats: Optional[dict[str, float]] = None,
        windows: Optional[list[tuple[int, int, int, int]]] = None,
    ) -> Optional[GlobalRoute]:
        """Route one net on ``graph`` (live graph or worker snapshot).

        ``stats`` accumulates the net's maze expansions; ``windows``,
        when given, collects every searched window — speculative
        callers use it as the net's read footprint.
        """
        if stats is None:
            stats = {}
        subnets = self.two_pin_subnets(net, graph)
        paths: list[list[Tile]] = []
        for src, dst in subnets:
            path = self._astar(graph, src, dst, stats, windows)
            if path is None:
                for placed in paths:
                    self._unplace_path(graph, placed)
                return None
            self._place_path(graph, path)
            paths.append(path)
        return GlobalRoute(net=net, paths=paths)

    def _astar(
        self,
        graph: GlobalGraph,
        src: Tile,
        dst: Tile,
        stats: Optional[dict[str, float]] = None,
        windows: Optional[list[tuple[int, int, int, int]]] = None,
    ) -> Optional[list[Tile]]:
        if stats is None:
            stats = {}
        margin = ASTAR_WINDOW_MARGIN
        lo_x = max(0, min(src[0], dst[0]) - margin)
        hi_x = min(graph.nx - 1, max(src[0], dst[0]) + margin)
        lo_y = max(0, min(src[1], dst[1]) - margin)
        hi_y = min(graph.ny - 1, max(src[1], dst[1]) + margin)
        window = (lo_x, lo_y, hi_x, hi_y)
        if windows is not None:
            windows.append(window)
        path = self._astar_in_window(graph, src, dst, window, stats)
        if path is None:
            full = (0, 0, graph.nx - 1, graph.ny - 1)
            if windows is not None:
                windows.append(full)
            path = self._astar_in_window(graph, src, dst, full, stats)
        return path

    @paired("global-maze", backend="object")
    def _astar_in_window(
        self,
        graph: GlobalGraph,
        src: Tile,
        dst: Tile,
        window: tuple[int, int, int, int],
        stats: dict[str, float],
    ) -> Optional[list[Tile]]:
        """Direction-aware A* between two tiles.

        Search states carry the arrival direction so the vertex
        (line-end) cost of Eq. (2) is charged exactly where a vertical
        run starts or ends — the tiles whose line-end demand the path
        will raise — rather than diffusely along the whole path.
        """
        lo_x, lo_y, hi_x, hi_y = window
        if src == dst:
            return [src]
        fast = getattr(graph, "astar_in_window", None)
        if fast is not None:
            # Array-core fast path (repro.engine): same direction-aware
            # loop over integer state ids against the graph's cost
            # caches, byte-identical result and counters.  Sanitized
            # snapshots expose no astar_in_window, so instrumented runs
            # fall through to the reference loop below.
            return fast(
                src, dst, window, self.stitch_aware, stats, self._profiling
            )

        def heuristic(t: Tile) -> float:
            return WL_WEIGHT * (abs(t[0] - dst[0]) + abs(t[1] - dst[1]))

        # State: (tile, direction); direction is "h", "v", or "" at src.
        start = (src, "")
        best: dict[tuple[Tile, str], float] = {start: 0.0}
        parent: dict[tuple[Tile, str], tuple[Tile, str]] = {}
        heap: list[tuple[float, float, tuple[Tile, str]]] = [
            (heuristic(src), 0.0, start)
        ]
        goal: Optional[tuple[Tile, str]] = None
        expansions = 0
        pops = 0
        while heap:
            _, g, state = heapq.heappop(heap)
            pops += 1
            if g > best.get(state, float("inf")):
                continue
            expansions += 1
            tile, direction = state
            if tile == dst:
                goal = state
                break
            for succ in graph.neighbors(tile):
                if not (lo_x <= succ[0] <= hi_x and lo_y <= succ[1] <= hi_y):
                    continue
                step_dir = "v" if succ[0] == tile[0] else "h"
                key = graph.edge_between(tile, succ)
                step = WL_WEIGHT + edge_cost_if_used(graph, key)
                if self.stitch_aware:
                    if step_dir == "v" and direction != "v":
                        # A vertical run starts: line end at this tile.
                        step += self._vertex_price(graph, tile)
                    if direction == "v" and step_dir != "v":
                        # A vertical run just ended at this tile.
                        step += self._vertex_price(graph, tile)
                    if step_dir == "v" and succ == dst:
                        # The run will terminate at the target tile.
                        step += self._vertex_price(graph, succ)
                candidate = g + step
                succ_state = (succ, step_dir)
                if candidate < best.get(succ_state, float("inf")) - 1e-12:
                    best[succ_state] = candidate
                    parent[succ_state] = state
                    heapq.heappush(
                        heap, (candidate + heuristic(succ), candidate, succ_state)
                    )
        stats["maze_expansions"] = stats.get("maze_expansions", 0) + expansions
        if self._profiling:
            # pushes == pops + len(heap) (heap invariant — the seed
            # entry counts as a push), so one add per pop suffices.
            stats["perf_maze_heap_pushes"] = (
                stats.get("perf_maze_heap_pushes", 0) + pops + len(heap)
            )
            stats["perf_maze_heap_pops"] = (
                stats.get("perf_maze_heap_pops", 0) + pops
            )
        if goal is None:
            return None
        return self._reconstruct(parent, start, goal)

    def _vertex_price(self, graph: GlobalGraph, tile: Tile) -> float:
        # The base price (Eq. 2) is kept mild so uncongested paths stay
        # short; persistent overflow is negotiated away through the
        # history term, which only grows where overflow survives a
        # rip-up round.  This mirrors NTUgr-style pricing and keeps the
        # wirelength overhead in the paper's ~1.5% band.
        return vertex_price(graph, tile)

    @staticmethod
    def _reconstruct(
        parent: dict[tuple[Tile, str], tuple[Tile, str]],
        start: tuple[Tile, str],
        goal: tuple[Tile, str],
    ) -> list[Tile]:
        states = [goal]
        while states[-1] != start:
            states.append(parent[states[-1]])
        states.reverse()
        return [tile for tile, _ in states]

    # ------------------------------------------------------------------
    # Demand bookkeeping
    # ------------------------------------------------------------------
    def _place_path(self, graph: GlobalGraph, path: Sequence[Tile]) -> None:
        self._apply_path(graph, path, +1)

    def _unplace_path(self, graph: GlobalGraph, path: Sequence[Tile]) -> None:
        self._apply_path(graph, path, -1)

    def _unplace(self, graph: GlobalGraph, route: GlobalRoute) -> None:
        for path in route.paths:
            self._unplace_path(graph, path)

    @staticmethod
    def _apply_path(
        graph: GlobalGraph, path: Sequence[Tile], delta: int
    ) -> None:
        for a, b in zip(path, path[1:]):
            graph.add_edge_demand(graph.edge_between(a, b), delta)
        for tile in vertical_run_line_ends(path):
            graph.add_vertex_demand(tile, delta)

    # ------------------------------------------------------------------
    # Negotiation
    # ------------------------------------------------------------------
    def _overflow_victims(
        self, graph: GlobalGraph, routes: dict[str, GlobalRoute]
    ) -> list[str]:
        """Nets crossing an overflowed edge or, in stitch-aware mode,
        holding a line end on a vertex-overflowed tile."""
        victims = []
        for name, route in routes.items():
            guilty = False
            for path in route.paths:
                if any(
                    graph.edge_demand(graph.edge_between(a, b))
                    > graph.edge_capacity(graph.edge_between(a, b))
                    for a, b in zip(path, path[1:])
                ):
                    guilty = True
                    break
                if self.stitch_aware and any(
                    graph.vertex_demand[t[0], t[1]]
                    > graph.vertex_capacity[t[0], t[1]]
                    for t in vertical_run_line_ends(path)
                ):
                    guilty = True
                    break
            if guilty:
                victims.append(name)
        return victims

    def _bump_history(self, graph: GlobalGraph) -> None:
        """Raise history cost on currently overflowed resources."""
        over_h = graph.h_demand > graph.h_capacity
        over_v = graph.v_demand > graph.v_capacity
        graph.h_history[over_h] += 0.5
        graph.v_history[over_v] += 0.5
        if self.stitch_aware:
            over_vertex = graph.vertex_demand > graph.vertex_capacity
            graph.vertex_history[over_vertex] += 0.5
        # History feeds the array engine's cost caches; rebuild them
        # after mutating it behind the graph's back.
        refresh = getattr(graph, "refresh_cost_cache", None)
        if refresh is not None:
            refresh()


def vertical_run_line_ends(path: Sequence[Tile]) -> list[Tile]:
    """Tiles holding a line end of a vertical run of ``path``.

    The global route's maximal vertical runs become vertical wire
    segments after layer assignment; their two end tiles each receive a
    line end (the quantity the vertex demand of Section III-A counts).
    """
    ends: list[Tile] = []
    n = len(path)
    run_start: Optional[int] = None
    for idx in range(n - 1):
        vertical = path[idx][0] == path[idx + 1][0]
        if vertical and run_start is None:
            run_start = idx
        if not vertical and run_start is not None:
            ends.extend([path[run_start], path[idx]])
            run_start = None
    if run_start is not None:
        ends.extend([path[run_start], path[n - 1]])
    return ends
