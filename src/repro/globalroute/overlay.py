"""Speculative-routing overlay for the global routing graph.

A worker thread in the parallel net-batch engine (see
:mod:`repro.parallel`) must route its net against the exact demand
state the serial router would have shown it, without mutating arrays
its batch-mates are reading.  :class:`GraphSnapshot` gives each worker
private demand arrays; the router's A* windows act as the worker's
declared read region, validated at merge time with
:func:`windows_hit`.
"""

from __future__ import annotations

from collections.abc import Iterable

from .graph import GlobalGraph

Tile = tuple[int, int]
Rect = tuple[int, int, int, int]


class GraphSnapshot(GlobalGraph):
    """A :class:`GlobalGraph` view with private demand arrays.

    Capacity and history arrays are shared read-only references (they
    only change between batches: capacities never, history in the
    serial ``_bump_history`` step); the demand arrays are copies, so a
    worker's placements — including the interaction between one net's
    own subnets — stay invisible to its batch-mates.

    Reads are *not* intercepted (numpy indexing is the hot path);
    instead the router records every A* window it searched, which
    bounds all demand reads, as the snapshot's read footprint.
    """

    def __init__(self, base: GlobalGraph) -> None:
        # Deliberately skips GlobalGraph.__init__: geometry and
        # capacities are borrowed from ``base``, not recomputed.
        self.design = base.design
        self.tile_size = base.tile_size
        self.nx = base.nx
        self.ny = base.ny
        self.h_capacity = base.h_capacity
        self.v_capacity = base.v_capacity
        self.vertex_capacity = base.vertex_capacity
        self.h_history = base.h_history
        self.v_history = base.v_history
        self.vertex_history = base.vertex_history
        self.h_demand = base.h_demand.copy()
        self.v_demand = base.v_demand.copy()
        self.vertex_demand = base.vertex_demand.copy()


def windows_hit(windows: Iterable[Rect], tiles: set[Tile]) -> bool:
    """Whether any tile lies inside any (inclusive) window rect.

    The merge loop's conflict test: ``windows`` is a speculative net's
    read footprint, ``tiles`` the tiles earlier batch-mates have
    already written to the live graph.
    """
    return any(
        lo_x <= i <= hi_x and lo_y <= j <= hi_y
        for lo_x, lo_y, hi_x, hi_y in windows
        for i, j in tiles
    )
