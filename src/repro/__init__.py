"""Stitch-aware routing for multiple e-beam lithography (MEBL).

Reproduction of Liu, Fang, Chang, "Stitch-Aware Routing for Multiple
E-Beam Lithography" (DAC 2013; TCAD 2015 extended version).

Public API tour:

* :class:`repro.core.StitchAwareRouter` / ``BaselineRouter`` — full
  routing flows (global routing -> layer/track assignment -> detailed
  routing) with and without stitch awareness.
* :mod:`repro.benchmarks_gen` — synthetic MCNC / Faraday suites
  matching the paper's Table I/II statistics.
* :mod:`repro.eval` — the violation checker producing the #VV / #SP /
  routability columns of the paper's tables.
* :mod:`repro.raster` — the MEBL data-preparation substrate (render,
  dither, overlay, defect scoring) behind Figs. 3-4.
* :mod:`repro.viz` — SVG / ASCII views of routed layouts (Figs. 15-16).
* :mod:`repro.observe` — the tracing/metrics subsystem; every routing
  run yields a :class:`repro.observe.RunTrace` of per-stage spans and
  counters with a stable JSON schema.
"""

from .config import (
    DEFAULT_CONFIG,
    ColoringMethod,
    RouterConfig,
    TrackMethod,
    benchmark_scale,
)
from .core.flow import BaselineRouter, FlowResult, StitchAwareRouter
from .observe import RunTrace, Span, Tracer

__version__ = "1.0.0"

__all__ = [
    "BaselineRouter",
    "ColoringMethod",
    "DEFAULT_CONFIG",
    "FlowResult",
    "RouterConfig",
    "RunTrace",
    "Span",
    "StitchAwareRouter",
    "TrackMethod",
    "Tracer",
    "benchmark_scale",
]
