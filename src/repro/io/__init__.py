"""JSON persistence for designs and routing reports."""

from .serialize import (
    design_from_dict,
    design_to_dict,
    load_design,
    load_report,
    report_from_dict,
    report_to_dict,
    save_design,
    save_report,
)

__all__ = [
    "design_from_dict",
    "design_to_dict",
    "load_design",
    "load_report",
    "report_from_dict",
    "report_to_dict",
    "save_design",
    "save_report",
]
