"""JSON persistence for designs and routing reports.

Lets users snapshot a generated benchmark instance (so experiments are
re-runnable bit-for-bit without regenerating), exchange designs with
other tools, and archive the violation reports the benchmarks produce.

The format is deliberately plain JSON: one top-level object with a
``format`` tag and a version, so future schema changes stay detectable.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from ..config import RouterConfig
from ..eval import NetReport, RoutingReport, Violation
from ..geometry import Point
from ..layout import Design, Net, Netlist, Pin, StitchingLines, Technology
from ..observe import RunTrace

FORMAT_DESIGN = "repro-design"
FORMAT_REPORT = "repro-report"
VERSION = 1

PathLike = Union[str, pathlib.Path]


# ----------------------------------------------------------------------
# Design
# ----------------------------------------------------------------------
def design_to_dict(design: Design) -> dict:
    """Plain-dict form of a routing instance."""
    assert design.stitches is not None
    return {
        "format": FORMAT_DESIGN,
        "version": VERSION,
        "name": design.name,
        "width": design.width,
        "height": design.height,
        "num_layers": design.technology.num_layers,
        "first_direction": design.technology.first_direction.value,
        "config": {
            "stitch_spacing": design.config.stitch_spacing,
            "epsilon": design.config.epsilon,
            "escape_width": design.config.escape_width,
            "tile_size": design.config.tile_size,
            "alpha": design.config.alpha,
            "beta": design.config.beta,
            "gamma": design.config.gamma,
        },
        "stitch_lines": list(design.stitches.xs),
        "nets": [
            {
                "name": net.name,
                "pins": [
                    {
                        "name": pin.name,
                        "x": pin.location.x,
                        "y": pin.location.y,
                        "layer": pin.layer,
                    }
                    for pin in net.pins
                ],
            }
            for net in design.netlist
        ],
    }


def design_from_dict(data: dict) -> Design:
    """Rebuild a :class:`Design` from :func:`design_to_dict` output."""
    if data.get("format") != FORMAT_DESIGN:
        raise ValueError(f"not a design document: {data.get('format')!r}")
    if data.get("version") != VERSION:
        raise ValueError(f"unsupported design version {data.get('version')!r}")
    from ..layout.technology import Direction

    config = RouterConfig(**data["config"])
    nets = [
        Net(
            entry["name"],
            tuple(
                Pin(p["name"], Point(p["x"], p["y"]), p["layer"])
                for p in entry["pins"]
            ),
        )
        for entry in data["nets"]
    ]
    return Design(
        name=data["name"],
        width=data["width"],
        height=data["height"],
        technology=Technology(
            data["num_layers"], Direction(data["first_direction"])
        ),
        netlist=Netlist(nets),
        config=config,
        stitches=StitchingLines(
            tuple(data["stitch_lines"]),
            epsilon=config.epsilon,
            escape_width=config.escape_width,
        ),
    )


def save_design(design: Design, path: PathLike) -> None:
    """Write a design to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(design_to_dict(design)))


def load_design(path: PathLike) -> Design:
    """Read a design from a JSON file."""
    return design_from_dict(json.loads(pathlib.Path(path).read_text()))


# ----------------------------------------------------------------------
# Routing report
# ----------------------------------------------------------------------
def report_to_dict(report: RoutingReport) -> dict:
    """Plain-dict form of a violation report.

    The embedded ``trace`` key (present when the report came from a
    traced flow) holds the :class:`RunTrace` document unchanged, so the
    same span/counter schema applies inside reports and standalone
    trace files.  Each net entry carries its attributed ``violations``
    (kind, stitching-line index, x, y, layer), and the top-level
    ``stitch_histogram`` key rolls them up per line — both additive,
    so pre-attribution reports still load (with empty attributions).
    """
    out = {
        "format": FORMAT_REPORT,
        "version": VERSION,
        "design": report.design_name,
        "total_nets": report.total_nets,
        "routed_nets": report.routed_nets,
        "via_violations": report.via_violations,
        "vertical_violations": report.vertical_violations,
        "short_polygons": report.short_polygons,
        "wirelength": report.wirelength,
        "vias": report.vias,
        "cpu_seconds": report.cpu_seconds,
        "stitch_histogram": {
            str(line): dict(kinds)
            for line, kinds in report.stitch_line_histogram().items()
        },
        "nets": {
            name: {
                "routed": nr.routed,
                "via_violations": nr.via_violations,
                "vertical_violations": nr.vertical_violations,
                "short_polygons": nr.short_polygons,
                "wirelength": nr.wirelength,
                "vias": nr.vias,
                "violations": [v.to_dict() for v in nr.violations],
            }
            for name, nr in report.nets.items()
        },
    }
    if report.trace is not None:
        out["trace"] = report.trace.to_dict()
    return out


def report_from_dict(data: dict) -> RoutingReport:
    """Rebuild a :class:`RoutingReport` from its dict form."""
    if data.get("format") != FORMAT_REPORT:
        raise ValueError(f"not a report document: {data.get('format')!r}")
    nets: dict[str, NetReport] = {
        name: NetReport(
            name=name,
            routed=entry["routed"],
            via_violations=entry["via_violations"],
            vertical_violations=entry["vertical_violations"],
            short_polygons=entry["short_polygons"],
            wirelength=entry["wirelength"],
            vias=entry["vias"],
            violations=[
                Violation.from_dict(name, v)
                for v in entry.get("violations", [])
            ],
        )
        for name, entry in data["nets"].items()
    }
    return RoutingReport(
        design_name=data["design"],
        total_nets=data["total_nets"],
        routed_nets=data["routed_nets"],
        via_violations=data["via_violations"],
        vertical_violations=data["vertical_violations"],
        short_polygons=data["short_polygons"],
        wirelength=data["wirelength"],
        vias=data["vias"],
        cpu_seconds=data["cpu_seconds"],
        nets=nets,
        trace=(
            RunTrace.from_dict(data["trace"]) if "trace" in data else None
        ),
    )


def save_report(report: RoutingReport, path: PathLike) -> None:
    """Write a routing report to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(report_to_dict(report)))


def load_report(path: PathLike) -> RoutingReport:
    """Read a routing report from a JSON file."""
    return report_from_dict(json.loads(pathlib.Path(path).read_text()))
