"""Ablation: segment ordering in the graph-based track assignment.

Section III-C2 places the *longest* segments next to the stitching
lines because they have the flexibility to dogleg their ends away.
This ablation compares that rule against a naive index order on random
panels with a real squeeze.
"""

import random
import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from repro.assign import Panel, PanelKind, PanelSegment, assign_tracks_graph
from repro.assign import track_graph as tg
from repro.geometry import Interval
from repro.layout import StitchingLines
from repro.reporting import format_table

from common import save_result

LINES = StitchingLines((15, 30), epsilon=1, escape_width=4)
PANEL_XS = list(range(15, 30))


def crowded_panel(seed):
    """A long segment plus a crowd that pins it against the lines."""
    rng = random.Random(seed)
    spans = [(0, 9)]
    crowd = rng.randint(10, 13)
    for _ in range(crowd):
        lo = rng.randint(2, 5)
        spans.append((lo, lo + rng.randint(2, 4)))
    segments = [
        PanelSegment(net=f"n{i}", index=i, span=Interval(*s))
        for i, s in enumerate(spans)
    ]
    return Panel(kind=PanelKind.COLUMN, position=1, segments=segments)


def run():
    paper_bad = naive_bad = 0
    original_order = tg._segment_order
    panels = [crowded_panel(s) for s in range(40)]
    for panel in panels:
        paper_bad += assign_tracks_graph(panel, PANEL_XS, LINES).num_bad_ends
    try:
        tg._segment_order = lambda segments: [
            s.index for s in sorted(segments, key=lambda s: s.index)
        ]
        for panel in panels:
            naive_bad += assign_tracks_graph(
                panel, PANEL_XS, LINES
            ).num_bad_ends
    finally:
        tg._segment_order = original_order
    return paper_bad, naive_bad


def test_ablation_segment_ordering(benchmark):
    paper_bad, naive_bad = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        [
            {"ordering": "long-next-to-lines (paper)", "bad_ends": paper_bad},
            {"ordering": "naive index order", "bad_ends": naive_bad},
        ],
        title="Ablation - segment ordering in graph track assignment "
        "(40 crowded panels)",
    )
    save_result("ablation_ordering", table)
    assert paper_bad <= naive_bad
