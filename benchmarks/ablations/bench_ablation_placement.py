"""Extension experiment: stitch-aware placement refinement.

The paper's conclusion proposes stitch-aware *placement* as future work
to remove the via violations caused by fixed pins on stitching lines.
This bench quantifies that proposal with the bounded-displacement
refinement pass of :mod:`repro.place`: #VV before/after, the pin moves
required, and the side effect on short polygons.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from repro.benchmarks_gen import mcnc_design
from repro.api import StitchAwareRouter
from repro.place import refine_pin_placement
from repro.reporting import format_table

from common import mcnc_scale, save_result

CIRCUITS = ("Struct", "S5378", "S9234")


def run(scale):
    rows = []
    for name in CIRCUITS:
        design = mcnc_design(name, scale)
        before = StitchAwareRouter().route(design).report
        refinement = refine_pin_placement(design)
        after = StitchAwareRouter().route(refinement.design).report
        rows.append(
            {
                "circuit": name,
                "vv_before": before.via_violations,
                "vv_after": after.via_violations,
                "pins_moved": refinement.moved_pins,
                "unmovable": refinement.unmovable_pins,
                "avg_shift": (
                    refinement.total_displacement / refinement.moved_pins
                    if refinement.moved_pins
                    else 0.0
                ),
                "sp_before": before.short_polygons,
                "sp_after": after.short_polygons,
            }
        )
    return rows


def test_ablation_placement_refinement(benchmark):
    rows = benchmark.pedantic(
        run, args=(mcnc_scale(),), rounds=1, iterations=1
    )
    table = format_table(
        rows,
        title=(
            "Extension - stitch-aware placement refinement "
            "(the paper's future work, Section V)"
        ),
    )
    save_result("ablation_placement", table)

    assert all(r["vv_after"] <= r["vv_before"] for r in rows)
    total_before = sum(r["vv_before"] for r in rows)
    total_after = sum(r["vv_after"] for r in rows)
    assert total_before > 0
    assert total_after < 0.2 * total_before
