"""Ablation: stitching-line spacing sweep.

The paper fixes the spacing at 15 routing pitches.  Sweeping it shows
the trade the MEBL system designer faces: denser stitching lines (more,
narrower stripes -> higher throughput) create more cut patterns and
more short-polygon pressure.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from repro.benchmarks_gen import MCNC_SPECS, generate_design
from repro.config import RouterConfig
from repro.api import BaselineRouter, StitchAwareRouter
from repro.reporting import format_table

from common import mcnc_scale, save_result

CIRCUIT = "S13207"


def run(scale):
    rows = []
    for spacing in (10, 15, 20, 30):
        config = RouterConfig(stitch_spacing=spacing, tile_size=spacing)
        design = generate_design(MCNC_SPECS[CIRCUIT], scale, config=config)
        base = BaselineRouter().route(design).report
        aware = StitchAwareRouter().route(design).report
        rows.append(
            {
                "spacing": spacing,
                "stitch_lines": len(design.stitches or ()),
                "base_sp": base.short_polygons,
                "aware_sp": aware.short_polygons,
                "aware_rout_pct": 100 * aware.routability,
            }
        )
    return rows


def test_ablation_stitch_spacing(benchmark):
    rows = benchmark.pedantic(
        run, args=(mcnc_scale(),), rounds=1, iterations=1
    )
    table = format_table(
        rows,
        title=(
            f"Ablation - stitching-line spacing ({CIRCUIT}); "
            "denser stripes -> more baseline short polygons"
        ),
    )
    save_result("ablation_spacing", table)

    assert all(r["aware_sp"] <= r["base_sp"] for r in rows)
    # Denser stitching lines create more baseline short polygons.
    assert rows[0]["base_sp"] >= rows[-1]["base_sp"]
