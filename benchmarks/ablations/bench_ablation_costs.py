"""Ablations: the Eq. (10) cost weights and the net ordering.

Sweeps the design choices DESIGN.md calls out on one mid-size circuit:

* ``gamma`` (escape cost) 0 -> 10: reserving the escape region should
  trade a little wirelength for fewer short polygons;
* ``beta`` (via-in-SUR cost) 0 -> 40: discouraging vias near lines is
  the main SP lever in detailed routing;
* stitch-aware net ordering on/off (Section III-D2).
"""

import dataclasses
import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from repro.benchmarks_gen import mcnc_design
from repro.config import RouterConfig
from repro.api import StitchAwareRouter
from repro.layout import Design
from repro.reporting import format_table

from common import mcnc_scale, save_result

CIRCUIT = "S13207"


def with_config(design: Design, config: RouterConfig) -> Design:
    return Design(
        name=design.name,
        width=design.width,
        height=design.height,
        technology=design.technology,
        netlist=design.netlist,
        config=config,
        stitches=design.stitches,
    )


def sweep_gamma(design):
    rows = []
    for gamma in (0.0, 2.0, 5.0, 10.0):
        cfg = dataclasses.replace(design.config, gamma=gamma)
        report = StitchAwareRouter().route(with_config(design, cfg)).report
        rows.append(
            {
                "gamma": gamma,
                "sp": report.short_polygons,
                "wl": report.wirelength,
                "rout_pct": 100 * report.routability,
            }
        )
    return rows


def sweep_beta(design):
    rows = []
    for beta in (0.0, 5.0, 10.0, 40.0):
        cfg = dataclasses.replace(design.config, beta=beta)
        report = StitchAwareRouter().route(with_config(design, cfg)).report
        rows.append(
            {
                "beta": beta,
                "sp": report.short_polygons,
                "wl": report.wirelength,
                "rout_pct": 100 * report.routability,
            }
        )
    return rows


def run():
    design = mcnc_design(CIRCUIT, mcnc_scale())
    return sweep_gamma(design), sweep_beta(design)


def test_ablation_cost_weights(benchmark):
    gamma_rows, beta_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        gamma_rows, title=f"Ablation - escape cost gamma ({CIRCUIT})"
    )
    text += "\n\n" + format_table(
        beta_rows, title=f"Ablation - via-in-SUR cost beta ({CIRCUIT})"
    )
    save_result("ablation_costs", text)

    # The paper requires beta >> gamma; the configured operating point
    # (beta=10, gamma=5) must not be worse than disabling the costs.
    sp_at_default = next(r["sp"] for r in beta_rows if r["beta"] == 10.0)
    sp_without = next(r["sp"] for r in beta_rows if r["beta"] == 0.0)
    assert sp_at_default <= sp_without
