"""Scaling study: runtime and quality vs instance size.

Not a paper table — an engineering sanity check that the reproduction's
comparative results are stable across instance sizes (the justification
for running scaled benchmarks by default), and a record of the pure-
Python runtime curve.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from repro.benchmarks_gen import mcnc_design
from repro.api import BaselineRouter, StitchAwareRouter
from repro.reporting import format_table

from common import save_result

CIRCUIT = "S13207"
SCALES = (0.02, 0.05, 0.1)


def run():
    rows = []
    for scale in SCALES:
        design = mcnc_design(CIRCUIT, scale)
        base = BaselineRouter().route(design).report
        aware = StitchAwareRouter().route(design).report
        rows.append(
            {
                "scale": scale,
                "nets": design.num_nets,
                "base_sp": base.short_polygons,
                "aware_sp": aware.short_polygons,
                "sp_ratio": (
                    aware.short_polygons / base.short_polygons
                    if base.short_polygons
                    else None
                ),
                "aware_rout": 100 * aware.routability,
                "aware_cpu": aware.cpu_seconds,
            }
        )
    return rows


def test_scaling_stability(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        title=(
            f"Scaling study ({CIRCUIT}): the SP reduction holds at "
            "every instance size"
        ),
        decimals=3,
    )
    save_result("scaling", table)

    for row in rows:
        if row["sp_ratio"] is not None:
            assert row["sp_ratio"] < 0.6
        assert row["aware_rout"] > 93
    # Runtime grows with size but stays laptop-scale.
    assert rows[-1]["aware_cpu"] < 120
