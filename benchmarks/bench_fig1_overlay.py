"""Figure 1b — overlay-error tolerance per pattern type.

Quantifies the motivating figure: patterns cut by a stitching line are
written by two beams whose overlay error shifts one half.  Horizontal
wires tolerate it; vias and vertical wires on the line do not — the
origin of the via constraint and the vertical routing constraint.
"""

from repro.raster import overlay_study
from repro.reporting import format_table

from common import save_result


def run():
    rows = []
    for d in overlay_study(overlays=((1, 0), (2, 0), (1, 1))):
        rows.append(
            {
                "pattern": d.pattern,
                "overlay_dx": d.overlay[0],
                "overlay_dy": d.overlay[1],
                "misprint_ratio": d.distortion,
            }
        )
    return rows


def test_fig1_overlay_tolerance(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        title=(
            "Fig. 1b - pattern distortion under stripe overlay error\n"
            "(horizontal wires tolerate it; vias / vertical wires on "
            "the line do not)"
        ),
        decimals=3,
    )
    save_result("fig1_overlay", table)

    by_pattern = {}
    for r in rows:
        by_pattern.setdefault(r["pattern"], []).append(r["misprint_ratio"])
    h_worst = max(by_pattern["horizontal wire"])
    via_best = min(by_pattern["via"])
    v_best = min(by_pattern["vertical wire"])
    assert h_worst < via_best, "vias must be far more overlay-sensitive"
    assert h_worst < v_best, "vertical wires must be far more sensitive"
