"""Table III — the stitch-aware framework vs the baseline router.

For every circuit of both suites: routability, via violations, short
polygons and CPU time for the conventional baseline and the full
stitch-aware framework.  The paper's headline: #SP drops to ~2% of the
baseline with a small routability gain and ~10% runtime overhead.
"""

from typing import Dict, Optional

from repro.api import BaselineRouter, StitchAwareRouter
from repro.observe import RunTrace
from repro.reporting import comparison_row, format_table

from common import full_suite, save_bench_json, save_result

COLUMNS = [
    "circuit",
    "base_rout", "base_vv", "base_sp", "base_cpu",
    "aware_rout", "aware_vv", "aware_sp", "aware_cpu",
]


def run_suite(traces: Optional[Dict[str, RunTrace]] = None):
    rows = []
    base_rows = []
    aware_rows = []
    for design in full_suite():
        base_flow = BaselineRouter().route(design)
        aware_flow = StitchAwareRouter().route(design)
        base, aware = base_flow.report, aware_flow.report
        if traces is not None:
            assert base_flow.trace is not None
            assert aware_flow.trace is not None
            traces[f"{design.name}/baseline"] = base_flow.trace
            traces[f"{design.name}/stitch-aware"] = aware_flow.trace
        rows.append(
            {
                "circuit": design.name,
                "base_rout": 100 * base.routability,
                "base_vv": base.via_violations,
                "base_sp": base.short_polygons,
                "base_cpu": base.cpu_seconds,
                "aware_rout": 100 * aware.routability,
                "aware_vv": aware.via_violations,
                "aware_sp": aware.short_polygons,
                "aware_cpu": aware.cpu_seconds,
            }
        )
        base_rows.append(rows[-1])
        aware_rows.append(rows[-1])
    return rows


def test_table3_framework_vs_baseline(benchmark):
    traces: Dict[str, RunTrace] = {}
    rows = benchmark.pedantic(
        run_suite, args=(traces,), rounds=1, iterations=1
    )
    comp = {
        "circuit": "Comp.",
        "base_rout": 1.0,
        "base_sp": 1.0,
        "base_cpu": 1.0,
    }
    base_sp = sum(r["base_sp"] for r in rows)
    aware_sp = sum(r["aware_sp"] for r in rows)
    base_cpu = sum(r["base_cpu"] for r in rows)
    aware_cpu = sum(r["aware_cpu"] for r in rows)
    base_rout = sum(r["base_rout"] for r in rows)
    aware_rout = sum(r["aware_rout"] for r in rows)
    comp.update(
        aware_rout=aware_rout / base_rout,
        aware_sp=aware_sp / base_sp if base_sp else None,
        aware_cpu=aware_cpu / base_cpu,
    )
    table = format_table(
        rows + [comp],
        columns=COLUMNS,
        title=(
            "Table III - baseline vs stitch-aware routing framework\n"
            "(paper Comp. row: Rout 1.011, #SP 0.023, CPU 1.1)"
        ),
    )
    save_result("table3_framework", table)
    save_bench_json("table3_framework", traces)

    # Shape assertions: massive SP reduction, comparable routability.
    assert aware_sp < 0.35 * base_sp
    assert aware_rout > 0.96 * base_rout
