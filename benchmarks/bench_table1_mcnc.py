"""Table I — MCNC benchmark circuit characteristics.

Regenerates the suite at benchmark scale and prints the same columns
as the paper (circuit, size, #layers, #nets, #pins) plus the full-size
reference counts the generator targets.
"""

from repro.benchmarks_gen import MCNC_NAMES, MCNC_SPECS, mcnc_design
from repro.reporting import format_table

from common import mcnc_scale, save_result


def build_rows(scale):
    rows = []
    for name in MCNC_NAMES:
        design = mcnc_design(name, scale)
        spec = MCNC_SPECS[name]
        rows.append(
            {
                "circuit": name,
                "size": f"{design.width}x{design.height}",
                "layers": design.technology.num_layers,
                "nets": design.num_nets,
                "pins": design.num_pins,
                "full_nets": spec.nets,
                "full_pins": spec.pins,
            }
        )
    return rows


def test_table1_mcnc_characteristics(benchmark):
    scale = mcnc_scale()
    rows = benchmark.pedantic(build_rows, args=(scale,), rounds=1, iterations=1)
    table = format_table(
        rows, title=f"Table I - MCNC benchmark circuits (scale {scale})"
    )
    save_result("table1_mcnc", table)
    assert len(rows) == 9
    for row in rows:
        assert row["layers"] == 3
        assert row["nets"] >= 2
