"""Figures 3 and 4 — rasterization: dithering errors and short-polygon
defects.

Fig. 3: error-diffusion dithering produces irregular pixels on gray
feature edges.  Fig. 4: those few pixels are a large fraction of a
short polygon's area, so the stitching-line stub prints with severe
distortion — the defect mechanism behind the short polygon constraint.
"""

import numpy as np

from repro.raster import (
    DitherKernel,
    Polygon,
    boundary_error_pixels,
    dither,
    render,
    short_polygon_experiment,
)
from repro.reporting import format_table

from common import save_result


def run():
    # Fig. 3: irregular pixels per kernel on an off-grid wire.
    wire = Polygon(1.4, 6.3, 28.6, 7.8)
    gray = render([wire], 30, 14)
    fig3_rows = []
    for kernel in DitherKernel:
        binary = dither(gray, kernel)
        fig3_rows.append(
            {
                "kernel": kernel.value,
                "irregular_pixels": boundary_error_pixels(binary, gray),
                "dose_in": float(gray.sum()),
                "dose_out": float(binary.sum()),
            }
        )

    # Fig. 4: relative pattern error vs stub length.
    fig4_rows = []
    for length in (1.5, 2.0, 3.0, 4.0, 6.0, 9.0, 14.0):
        score = short_polygon_experiment(length, wire_width=1.4, canvas=32)
        fig4_rows.append(
            {
                "stub_length_px": length,
                "polygon_area": score.polygon_area,
                "relative_error": score.relative_error,
            }
        )
    return fig3_rows, fig4_rows


def test_fig3_4_rasterization(benchmark):
    fig3_rows, fig4_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        fig3_rows,
        title="Fig. 3 - irregular edge pixels from error diffusion",
    )
    text += "\n\n" + format_table(
        fig4_rows,
        title=(
            "Fig. 4 - short polygons distort disproportionately\n"
            "(relative error must fall as the stub grows)"
        ),
        decimals=3,
    )
    save_result("fig3_4_raster", text)

    assert all(r["irregular_pixels"] > 0 for r in fig3_rows)
    errors = [r["relative_error"] for r in fig4_rows]
    # Pixel discretization makes the curve locally noisy; the claim is
    # the trend: short stubs distort clearly more than long wires.
    short_mean = sum(errors[:3]) / 3
    long_mean = sum(errors[-3:]) / 3
    assert short_mean > long_mean
    assert min(errors[:2]) > errors[-1]
    # Dose conservation: diffusion keeps total intensity close.
    for r in fig3_rows:
        assert abs(r["dose_out"] - r["dose_in"]) / r["dose_in"] < 0.2
