"""Table VII — track assignment: none vs ILP vs graph heuristic.

All three column-panel track assigners run inside the otherwise
identical stitch-aware flow (same global routing, layer assignment and
stitch-aware detailed routing), mirroring the paper's setup.  As in the
paper, the ILP is orders of magnitude slower and is skipped ("NA") for
the two largest MCNC circuits; the paper reports >100000 s for those.

Shape to reproduce: the paper cuts #SP by >97% here because at full
density almost every residual short polygon stems from a track-assigned
bad end.  In the scaled synthetic instances most residual sites stem
from pin-connection stubs instead, which the shared stitch-aware
detailed router suppresses for all three columns — so the measured
differential between the TA algorithms is compressed (see
EXPERIMENTS.md).  What must hold: the stitch-aware assigners are never
worse than the oblivious one, the graph heuristic matches the ILP's
quality, and the ILP pays a large runtime factor.
"""

import time

from repro.assign import TrackMethod, assign_layers, assign_tracks, extract_panels
from repro.config import RouterConfig
from repro.api import StitchAwareRouter
from repro.globalroute import GlobalRouter
from repro.reporting import format_table

from common import full_suite, save_result

#: Circuits the paper itself could not finish with the ILP.
ILP_SKIP = {"S38417", "S38584"}

COLUMNS = [
    "circuit",
    "none_rout", "none_sp", "none_cpu",
    "ilp_rout", "ilp_sp", "ilp_cpu",
    "graph_rout", "graph_sp", "graph_cpu",
]


def stage_timings():
    """Track-assignment *stage* times and bad ends (S13207).

    Whole-flow CPU compresses the ILP-vs-graph runtime factor because
    detailed routing dominates at benchmark scale; this isolates the
    stage the paper's CPU column is about.
    """
    from repro.benchmarks_gen import mcnc_design
    from common import mcnc_scale

    design = mcnc_design("S13207", mcnc_scale())
    gr = GlobalRouter().route(design)
    columns, rows_p = extract_panels(gr)
    layers = assign_layers(columns, rows_p, design.technology)
    out = []
    for tag, method in (
        ("none", TrackMethod.BASELINE),
        ("graph", TrackMethod.GRAPH),
        ("ilp", TrackMethod.ILP),
    ):
        start = time.perf_counter()
        ta = assign_tracks(design, gr.graph, layers, method)
        out.append(
            {
                "method": tag,
                "stage_cpu_s": time.perf_counter() - start,
                "bad_ends": ta.num_bad_ends,
            }
        )
    return out


def run():
    rows = []
    for design in full_suite():
        row = {"circuit": design.name}
        for tag, method in (
            ("none", TrackMethod.BASELINE),
            ("ilp", TrackMethod.ILP),
            ("graph", TrackMethod.GRAPH),
        ):
            if tag == "ilp" and design.name in ILP_SKIP:
                row.update({f"{tag}_rout": None, f"{tag}_sp": None,
                            f"{tag}_cpu": None})
                continue
            router = StitchAwareRouter(
                config=RouterConfig(track_method=method)
            )
            report = router.route(design).report
            row.update(
                {
                    f"{tag}_rout": 100 * report.routability,
                    f"{tag}_sp": report.short_polygons,
                    f"{tag}_cpu": report.cpu_seconds,
                }
            )
        rows.append(row)
    return rows


def test_table7_track_assignment(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    stages = stage_timings()
    table = format_table(
        rows,
        columns=COLUMNS,
        title=(
            "Table VII - track assignment algorithms inside the "
            "stitch-aware flow\n(paper Comp. row: none SP 1.000, "
            "ILP SP 0.019 at 3623x CPU, graph SP 0.026 at 1.1x CPU)"
        ),
    )
    table += "\n\n" + format_table(
        stages,
        title="Track-assignment stage only (S13207): CPU and bad ends",
        decimals=3,
    )
    save_result("table7_track", table)

    stage_by = {r["method"]: r for r in stages}
    assert stage_by["ilp"]["stage_cpu_s"] > 10 * stage_by["graph"]["stage_cpu_s"]
    assert stage_by["graph"]["bad_ends"] <= stage_by["none"]["bad_ends"]

    none_sp = sum(r["none_sp"] for r in rows)
    graph_sp = sum(r["graph_sp"] for r in rows)
    # Stitch-aware TA never loses to the oblivious one (the margin is
    # compressed at benchmark scale; see the module docstring).
    assert graph_sp <= 1.3 * none_sp

    shared = [r for r in rows if r["ilp_sp"] is not None]
    ilp_sp = sum(r["ilp_sp"] for r in shared)
    graph_shared_sp = sum(r["graph_sp"] for r in shared)
    none_shared_sp = sum(r["none_sp"] for r in shared)
    assert ilp_sp <= 1.3 * none_shared_sp
    # The graph heuristic is competitive with the exact ILP.
    assert graph_shared_sp <= 2 * max(ilp_sp, 5)
    # ILP pays a large runtime factor on the shared circuits.
    ilp_cpu = sum(r["ilp_cpu"] for r in shared)
    graph_cpu = sum(r["graph_cpu"] for r in shared)
    assert ilp_cpu > graph_cpu
