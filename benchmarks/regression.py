"""Benchmark regression gate: diff fresh traces against baselines.

Routes a few small Table III circuits with both routers, freezes their
:class:`~repro.observe.RunTrace` documents, and diffs each against the
committed baseline in ``benchmarks/baselines/BENCH_<circuit>.json``
via :func:`repro.observe.diff_traces`.  Deterministic counters (maze
expansions, A* expansions, rip-up rounds, flow augmentations, ...)
must match the baseline **exactly** — any drift is a behavior change
somebody has to sign off on; wall time fails only past the tolerance
(default 25%) and above the noise floor.

Every fresh solution is additionally run through the independent
solution auditor (:func:`repro.analysis.audit_solution`): the AUD
rules re-derive all stitching constraints from the raw geometry and
cross-check the report's counters, so the gate no longer trusts the
evaluator it is diffing (``--no-audit`` opts out).  The audit is
invoked directly on the finished flow — not via
``RouterConfig(audit=True)`` — so the produced traces stay
byte-compatible with the committed (audit-free) baselines.

Exit status is non-zero on any regression, so CI can gate on it::

    PYTHONPATH=src python benchmarks/regression.py                 # full gate
    PYTHONPATH=src python benchmarks/regression.py --only S9234    # one circuit
    PYTHONPATH=src python benchmarks/regression.py --no-wall       # counters only
    PYTHONPATH=src python benchmarks/regression.py --update        # refresh baselines
    PYTHONPATH=src python benchmarks/regression.py --workers 4     # parallel gate
    PYTHONPATH=src python benchmarks/regression.py --workers 4 --executor process
    PYTHONPATH=src python benchmarks/regression.py --only S13207 --scale 10 \
        --workers 4 --executor process --out-dir .  # workers speedup
    PYTHONPATH=src python benchmarks/regression.py --engine array  # array-core gate
    PYTHONPATH=src python benchmarks/regression.py --scale 10 --out-dir .  # engine speedup
    PYTHONPATH=src python benchmarks/regression.py --snapshot-dir .  # refresh BENCH_*.json
    PYTHONPATH=src python benchmarks/regression.py --profile counters  # profiled gate
    PYTHONPATH=src python benchmarks/regression.py --overhead-budget 2 --repeat 5  # profiling cost

``--engine array`` runs the whole gate on the numpy array core
(:mod:`repro.engine`) and diffs against the *same committed
baselines* — the engines' byte-identity contract means no counter may
move.  ``--scale MULT`` instead routes every circuit at ``MULT x`` its
gate scale with *both* engines, requires identical counters,
cross-checks both solutions under the independent audit, and records
the object/array wall-clock speedup — the minimum over ``--repeat N``
interleaved runs (``SPEEDUP_ENGINE_<circuit>.json`` with
``--out-dir``; the committed copies back the speedup claims in
``docs/performance.md``).

``--workers N`` routes with the parallel net-batch engine and diffs
the result against the *same serial baselines*: the engine's
determinism contract means no routing counter may move (only its own
``parallel_*`` scheduling counters are stripped — they have no serial
counterpart).  It also runs serially and prints the per-circuit
wall-clock speedup (on GIL-bound pure-Python workloads expect ~1.0x;
see ``docs/parallelism.md``).  Combine with ``--no-wall`` when the
committed wall times come from other hardware.

``--profile counters|full`` routes the gate with the engine profiling
counters enabled and strips the ``perf_*`` / ``stream_*``
instrumentation before diffing — the profiled runs must still match
the profile-off baselines exactly (profiling never perturbs routing).
``--overhead-budget PCT`` is the cost side of that contract: it
interleaves profile-off and profile-counters runs and fails when the
counters-mode wall exceeds off-mode by more than ``PCT`` percent
(plus a 20 ms jitter floor — the gate circuits finish in tens of
milliseconds).

Baseline refresh procedure (after an *intentional* behavior change):
run with ``--update``, eyeball ``git diff benchmarks/baselines/`` to
confirm only the counters you expected moved, and commit the new
baselines together with the change that moved them.  Cross-machine
wall times are not comparable, which is why CI runs ``--no-wall``;
the committed wall numbers only serve local before/after comparisons.

``--snapshot-dir DIR`` also writes the fresh ``BENCH_<circuit>.json``
documents to ``DIR`` (same label→trace schema as the baselines).
Pointed at the repo root, this refreshes the top-level perf-trajectory
snapshots; CI uploads them as artifacts on every gate run.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

from repro.analysis import audit_solution, render_audit
from repro.benchmarks_gen import mcnc_design
from repro.config import RouterConfig
from repro.api import BaselineRouter, FlowResult, StitchAwareRouter
from repro.observe import (
    DiffThresholds,
    RunTrace,
    diff_traces,
    render_diff,
)
from repro.observe import schema

BASELINE_DIR = pathlib.Path(__file__).parent / "baselines"

#: The gate's circuits: small enough that the whole gate runs in
#: seconds, spread over the easy/hard MCNC split (S13207 has almost no
#: stitch pins; S9234/S5378 are "hard" circuits with many).
CIRCUITS: Dict[str, float] = {
    "S9234": 0.02,
    "S5378": 0.02,
    "S13207": 0.02,
}

ROUTERS = {
    "baseline": BaselineRouter,
    "stitch-aware": StitchAwareRouter,
}


def baseline_path(circuit: str) -> pathlib.Path:
    """Committed baseline document for one circuit."""
    return BASELINE_DIR / f"BENCH_{circuit}.json"


def run_circuit(
    circuit: str,
    workers: int = 1,
    engine: str = "object",
    profile: str = "off",
    executor: str = "thread",
) -> Dict[str, FlowResult]:
    """Route one gate circuit with every router; flows keyed by label.

    Returns the full :class:`~repro.core.FlowResult` (not just the
    trace) so the caller can both diff the traces and independently
    audit the solutions.
    """
    scale = CIRCUITS[circuit]
    config = RouterConfig(
        workers=workers, engine=engine, profile=profile, executor=executor
    )
    flows: Dict[str, FlowResult] = {}
    for label, router_cls in ROUTERS.items():
        design = mcnc_design(circuit, scale)
        flows[label] = router_cls(config=config).route(design)
    return flows


def engine_speedup(
    circuit: str,
    scale_multiplier: float,
    out_dir: Optional[str],
    repeat: int = 1,
) -> List[str]:
    """Object-vs-array differential + speedup run at a scaled workload.

    Routes the circuit at ``gate scale x multiplier`` with both
    engines (stitch-aware flow, serial), asserts their traces carry
    **identical deterministic counters** (the byte-identity contract),
    cross-checks both solutions under the independent audit (oversized
    instances may carry genuine findings — but only the *same* ones
    from both engines), and reports the wall-clock speedup, the
    minimum over ``repeat`` interleaved runs per engine.  With
    ``out_dir`` set, writes ``SPEEDUP_ENGINE_<circuit>.json``
    recording per-engine walls — the committed artifacts behind
    ``docs/performance.md``.
    """
    scale = CIRCUITS[circuit] * scale_multiplier
    failures: List[str] = []
    flows: Dict[str, FlowResult] = {}
    walls: Dict[str, List[float]] = {"object": [], "array": []}
    # Repeats interleave the engines (fairer under drifting machine
    # load) and the recorded wall is the minimum — the standard
    # benchmarking estimator for "how fast can this code run".
    # Counters must agree across every run, engines and repeats alike.
    for run in range(max(1, repeat)):
        for engine in ("object", "array"):
            design = mcnc_design(circuit, scale)
            config = RouterConfig(engine=engine)
            flow = StitchAwareRouter(config=config).route(design)
            assert flow.trace is not None
            walls[engine].append(flow.trace.wall_seconds)
            if run == 0:
                flows[engine] = flow
            else:
                rediff = diff_traces(
                    flows[engine].trace,
                    flow.trace,
                    DiffThresholds(include_wall=False),
                )
                if not rediff.ok:
                    failures.extend(
                        f"{circuit}@{scale:g}: {engine} repeat {run} "
                        f"nondeterminism {line}"
                        for line in rediff.regressions()
                    )

    obj_trace, arr_trace = flows["object"].trace, flows["array"].trace
    assert obj_trace is not None and arr_trace is not None
    diff = diff_traces(
        obj_trace, arr_trace, DiffThresholds(include_wall=False)
    )
    if diff.ok:
        print(f"{circuit}@{scale:g}: engines agree on every counter")
    else:
        print(render_diff(diff))
        failures.extend(
            f"{circuit}@{scale:g}: engine divergence {line}"
            for line in diff.regressions()
        )
    # The audit serves as an engine cross-check here: oversized
    # instances may carry genuine findings (they are well past the
    # paper's congestion envelope), but both engines must produce the
    # *same* findings — a clean array run over a dirty object run (or
    # vice versa) would mean the engines routed different solutions.
    audits = {}
    for engine, flow in flows.items():
        report = audit_solution(
            flow.detailed_result, flow.report, flow.global_result
        )
        audits[engine] = sorted(
            (f.rule, f.net or "", f.message) for f in report.findings
        ) + sorted((d.counter, d.reported, d.recomputed) for d in report.drift)
        status = (
            "clean" if report.ok else f"{len(report.findings)} finding(s)"
        )
        print(f"{circuit}@{scale:g}: {engine} audit {status}")
    if audits["object"] != audits["array"]:
        failures.append(
            f"{circuit}@{scale:g}: engines disagree under audit "
            f"(object {len(audits['object'])} vs "
            f"array {len(audits['array'])} findings)"
        )

    s, a = min(walls["object"]), min(walls["array"])
    ratio = s / a if a > 0 else 0.0
    print(
        f"{circuit}@{scale:g}: object {s:.3f}s, array {a:.3f}s, "
        f"speedup x{ratio:.2f} (min of {len(walls['object'])} run(s))"
    )
    if out_dir:
        out = pathlib.Path(out_dir) / f"SPEEDUP_ENGINE_{circuit}.json"
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(
                {
                    "circuit": circuit,
                    "scale": scale,
                    "scale_multiplier": scale_multiplier,
                    "object_wall_seconds": round(s, 4),
                    "array_wall_seconds": round(a, 4),
                    "repeats": len(walls["object"]),
                    "speedup": round(ratio, 3),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {out}")
    return failures


def workers_speedup(
    circuit: str,
    scale_multiplier: float,
    workers: int,
    executor: str,
    engine: str,
    out_dir: Optional[str],
    repeat: int = 1,
) -> List[str]:
    """Serial-vs-parallel differential + speedup at a scaled workload.

    Routes the circuit at ``gate scale x multiplier`` (stitch-aware
    flow) serially and with ``workers`` pooled workers on the chosen
    ``executor`` backend, interleaved ``repeat`` times each.  The
    parallel traces must reproduce the serial deterministic counters
    exactly (only the ``parallel_*`` scheduling counters are
    stripped), and the recorded speedup is the ratio of per-mode
    minimum walls.  With ``out_dir`` set, writes
    ``SPEEDUP_<circuit>.json`` — or ``SPEEDUP_PROC_<circuit>.json``
    for the process executor, so ``repro perf-history`` can tell the
    backends apart.
    """
    scale = CIRCUITS[circuit] * scale_multiplier
    failures: List[str] = []
    walls: Dict[str, List[float]] = {"serial": [], "parallel": []}
    traces: Dict[str, RunTrace] = {}
    for run in range(max(1, repeat)):
        for mode in ("serial", "parallel"):
            design = mcnc_design(circuit, scale)
            config = RouterConfig(
                workers=workers if mode == "parallel" else 1,
                engine=engine,
                executor=executor,
            )
            flow = StitchAwareRouter(config=config).route(design)
            assert flow.trace is not None
            walls[mode].append(flow.trace.wall_seconds)
            if run == 0:
                traces[mode] = flow.trace

    diff = diff_traces(
        traces["serial"],
        strip_parallel_counters(traces["parallel"]),
        DiffThresholds(include_wall=False),
    )
    if diff.ok:
        print(
            f"{circuit}@{scale:g}: {executor} pool matches the serial "
            f"counters exactly"
        )
    else:
        print(render_diff(diff))
        failures.extend(
            f"{circuit}@{scale:g}: executor divergence {line}"
            for line in diff.regressions()
        )

    s, p = min(walls["serial"]), min(walls["parallel"])
    ratio = s / p if p > 0 else 0.0
    print(
        f"{circuit}@{scale:g}: serial {s:.3f}s, "
        f"workers={workers} ({executor}) {p:.3f}s, speedup x{ratio:.2f} "
        f"(min of {len(walls['serial'])} run(s))"
    )
    if out_dir:
        stem = (
            f"SPEEDUP_PROC_{circuit}"
            if executor == "process"
            else f"SPEEDUP_{circuit}"
        )
        out = pathlib.Path(out_dir) / f"{stem}.json"
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(
                {
                    "circuit": circuit,
                    "scale": scale,
                    "scale_multiplier": scale_multiplier,
                    "serial_wall_seconds": round(s, 4),
                    "parallel_wall_seconds": round(p, 4),
                    "workers": workers,
                    "engine": engine,
                    "executor": executor,
                    "repeats": len(walls["serial"]),
                    "speedup": round(ratio, 3),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {out}")
    return failures


#: Absolute slack added to the overhead budget: the gate circuits
#: finish in tens of milliseconds, where OS timer jitter alone dwarfs
#: any percentage budget.  20 ms keeps the check meaningful for the
#: relative budget while refusing to flake on scheduler noise.
OVERHEAD_NOISE_FLOOR_SECONDS = 0.02


def overhead_budget(
    circuit: str,
    engine: str,
    budget_pct: float,
    repeat: int = 3,
) -> List[str]:
    """Profiling overhead gate: ``profile="counters"`` must be ~free.

    Routes the circuit (stitch-aware flow, serial) with
    ``profile="off"`` and ``profile="counters"`` interleaved ``repeat``
    times each and compares the per-mode minimum walls: counters mode
    must finish within ``budget_pct`` percent of off mode (plus the
    absolute :data:`OVERHEAD_NOISE_FLOOR_SECONDS` slack).  Also proves
    the instrumentation contract on the way: stripping the ``perf_*``
    / ``stream_*`` counters from the counters-mode trace must recover
    the off-mode counters exactly.
    """
    scale = CIRCUITS[circuit]
    failures: List[str] = []
    walls: Dict[str, List[float]] = {"off": [], "counters": []}
    traces: Dict[str, RunTrace] = {}
    for run in range(max(1, repeat)):
        for mode in ("off", "counters"):
            design = mcnc_design(circuit, scale)
            config = RouterConfig(engine=engine, profile=mode)
            flow = StitchAwareRouter(config=config).route(design)
            assert flow.trace is not None
            walls[mode].append(flow.trace.wall_seconds)
            if run == 0:
                traces[mode] = flow.trace

    diff = diff_traces(
        traces["off"],
        strip_profile_counters(traces["counters"]),
        DiffThresholds(include_wall=False),
    )
    if diff.ok:
        print(f"{circuit}: counters-mode trace strips back to off-mode")
    else:
        print(render_diff(diff))
        failures.extend(
            f"{circuit}: profiling perturbed a counter: {line}"
            for line in diff.regressions()
        )

    off_wall = min(walls["off"])
    counters_wall = min(walls["counters"])
    limit = off_wall * (1.0 + budget_pct / 100.0) + OVERHEAD_NOISE_FLOOR_SECONDS
    overhead_pct = (
        100.0 * (counters_wall - off_wall) / off_wall if off_wall > 0 else 0.0
    )
    print(
        f"{circuit}: off {off_wall:.4f}s, counters {counters_wall:.4f}s "
        f"({overhead_pct:+.1f}%, budget {budget_pct:g}% "
        f"+ {OVERHEAD_NOISE_FLOOR_SECONDS:g}s noise floor, "
        f"min of {len(walls['off'])} run(s), engine={engine})"
    )
    if counters_wall > limit:
        failures.append(
            f"{circuit}: profile='counters' wall {counters_wall:.4f}s "
            f"exceeds budget {limit:.4f}s "
            f"(off {off_wall:.4f}s + {budget_pct:g}%)"
        )
    return failures


def traces_of(flows: Dict[str, FlowResult]) -> Dict[str, RunTrace]:
    """The ``label -> trace`` view of one circuit's flows."""
    traces: Dict[str, RunTrace] = {}
    for label, flow in flows.items():
        assert flow.trace is not None
        traces[label] = flow.trace
    return traces


def audit_flows(circuit: str, flows: Dict[str, FlowResult]) -> List[str]:
    """Independently audit every fresh solution; failure lines out.

    Calls :func:`repro.analysis.audit_solution` directly on the
    finished flows (rather than routing with ``audit=True``) so the
    traces being diffed stay identical to the committed baselines,
    which predate the audit span.
    """
    failures: List[str] = []
    for label, flow in flows.items():
        report = audit_solution(
            flow.detailed_result, flow.report, flow.global_result
        )
        if report.ok:
            print(
                f"{circuit}/{label}: audit clean "
                f"({report.nets_checked} nets)"
            )
        else:
            print(render_audit(report))
            failures.extend(
                f"{circuit}/{label}: audit {f.rule} {f.message}"
                for f in report.findings
            )
            failures.extend(
                f"{circuit}/{label}: audit drift {d.counter}: "
                f"reported {d.reported} != recomputed {d.recomputed}"
                for d in report.drift
            )
    return failures


def _strip_prefixed(trace: RunTrace, prefixes: tuple) -> RunTrace:
    """A copy of ``trace`` without counters named under ``prefixes``.

    The scrub runs over the serialized document (every span plus the
    orphan counters) so the returned trace is exactly what a run that
    never recorded those counters would have frozen.
    """
    doc = trace.to_dict()

    def scrub(span: dict) -> None:
        counters = span.get("counters")
        if counters:
            for key in [k for k in counters if k.startswith(prefixes)]:
                del counters[key]
            if not counters:
                del span["counters"]
        for child in span.get("children", ()):
            scrub(child)

    for span in doc["spans"]:
        scrub(span)
    doc["counters"] = {
        k: v
        for k, v in doc["counters"].items()
        if not k.startswith(prefixes)
    }
    return RunTrace.from_dict(doc)


def strip_parallel_counters(trace: RunTrace) -> RunTrace:
    """A copy of ``trace`` without the ``parallel_*`` bookkeeping.

    The parallel engine's determinism contract covers the *routing*
    counters (they match the serial run exactly — that is what the
    differential suite proves); its own scheduling counters (batches,
    conflicts, pooled tasks) have no serial counterpart, so a parallel
    gate run strips them before diffing against the serial baseline.
    """
    return _strip_prefixed(trace, schema.strip_prefixes("scheduling"))


def strip_profile_counters(trace: RunTrace) -> RunTrace:
    """A copy of ``trace`` without ``perf_*`` / ``stream_*`` counters.

    Profiling counters (``RouterConfig(profile=...)``) and the
    streaming tracer's bookkeeping are observability instrumentation
    by contract: stripping them must recover the exact counters of an
    unprofiled run — which is what lets a profiled gate run diff
    against the committed (profile-off) baselines.
    """
    return _strip_prefixed(
        trace, schema.strip_prefixes("profiling", "streaming")
    )


def save_traces(path: pathlib.Path, traces: Dict[str, RunTrace]) -> None:
    """Write a ``label -> trace`` document (BENCH_*.json schema)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {label: trace.to_dict() for label, trace in traces.items()}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_traces(path: pathlib.Path) -> Dict[str, RunTrace]:
    """Read a ``label -> trace`` document back."""
    data = json.loads(path.read_text())
    return {label: RunTrace.from_dict(doc) for label, doc in data.items()}


def check_circuit(
    circuit: str,
    traces: Dict[str, RunTrace],
    thresholds: DiffThresholds,
) -> List[str]:
    """Diff fresh traces against the committed baseline; failures out."""
    path = baseline_path(circuit)
    if not path.exists():
        return [f"{circuit}: missing baseline {path} (run with --update)"]
    baselines = load_traces(path)
    failures: List[str] = []
    for label, fresh in traces.items():
        if label not in baselines:
            failures.append(f"{circuit}/{label}: not in baseline document")
            continue
        diff = diff_traces(baselines[label], fresh, thresholds)
        if diff.ok:
            print(f"{circuit}/{label}: OK")
        else:
            print(render_diff(diff))
            failures.extend(
                f"{circuit}/{label}: {line}" for line in diff.regressions()
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark trace regression gate"
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="CIRCUIT",
        help="restrict to one circuit (repeatable)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed baselines instead of checking",
    )
    parser.add_argument(
        "--no-wall",
        action="store_true",
        help="compare deterministic counters only (use on CI: committed "
        "wall times come from a different machine)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=25.0,
        metavar="PCT",
        help="wall-time regression threshold (default 25%%)",
    )
    parser.add_argument(
        "--min-wall",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="noise floor below which stage timings are not compared",
    )
    parser.add_argument(
        "--out-dir",
        metavar="DIR",
        help="also write the freshly produced traces there (CI artifacts)",
    )
    parser.add_argument(
        "--snapshot-dir",
        metavar="DIR",
        help="refresh the top-level BENCH_<circuit>.json perf snapshots "
        "there (point at the repo root to update the committed "
        "trajectory; CI uploads them as artifacts)",
    )
    parser.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the independent solution audit of the fresh runs",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="route with N worker threads and verify the parallel runs "
        "against the serial baselines (parallel_* scheduling counters "
        "are stripped; everything else must match exactly).  Also runs "
        "serially and reports the wall-clock speedup per circuit.",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="worker-pool backend for --workers runs (default: thread; "
        "process ships state over shared memory and must reproduce "
        "the same bytes — SPEEDUP artifacts gain a PROC_ prefix so "
        "perf-history can tell the rows apart)",
    )
    parser.add_argument(
        "--engine",
        choices=("object", "array"),
        default="object",
        help="routing engine for the gate runs (default: object, the "
        "reference the baselines were recorded with; array must "
        "reproduce the same counters — that equality is the point "
        "of running the gate with both)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        metavar="MULT",
        help="switch to the engine-speedup mode: route each circuit at "
        "MULT x its gate scale with BOTH engines, require identical "
        "deterministic counters, audit the array solutions, and "
        "report object/array wall-clock speedups (baseline diffing "
        "is skipped — the committed baselines are 1x).  With "
        "--out-dir, writes SPEEDUP_ENGINE_<circuit>.json artifacts.  "
        "Combined with --workers N, switches to the workers-speedup "
        "mode instead: serial vs pooled on the chosen --executor at "
        "the scaled workload, writing SPEEDUP[_PROC]_<circuit>.json.",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="with --scale / --overhead-budget: route each mode N times "
        "(interleaved) and record the minimum wall per mode; counters "
        "must agree across every run",
    )
    parser.add_argument(
        "--profile",
        choices=("off", "counters", "full"),
        default="off",
        help="route the gate circuits with this RouterConfig profile "
        "level; perf_* / stream_* counters are stripped before "
        "diffing, so the profiled runs must still match the "
        "profile-off baselines exactly",
    )
    parser.add_argument(
        "--overhead-budget",
        type=float,
        metavar="PCT",
        help="switch to the profiling-overhead mode: route each circuit "
        "with profile off and counters (interleaved, --repeat each), "
        "require the stripped counters-mode trace to equal the "
        "off-mode trace, and fail if the counters-mode wall exceeds "
        "off by more than PCT%% (plus a 20 ms noise floor)",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.update and args.workers > 1:
        parser.error("baselines are serial; refusing --update with --workers")
    if args.update and args.profile != "off":
        parser.error(
            "baselines are profile-off; refusing --update with --profile"
        )
    if args.scale is not None and args.scale <= 0:
        parser.error("--scale must be positive")
    if args.overhead_budget is not None and args.overhead_budget <= 0:
        parser.error("--overhead-budget must be positive")
    if args.scale is not None and args.overhead_budget is not None:
        parser.error("--scale and --overhead-budget are separate modes")
    if args.repeat < 1:
        parser.error("--repeat must be at least 1")

    circuits = args.only or list(CIRCUITS)
    unknown = [c for c in circuits if c not in CIRCUITS]
    if unknown:
        parser.error(
            f"unknown gate circuit(s) {unknown}; choose from {list(CIRCUITS)}"
        )
    thresholds = DiffThresholds(
        wall_pct=args.wall_tolerance,
        min_wall_seconds=args.min_wall,
        include_wall=not args.no_wall,
    )

    failures: List[str] = []
    if args.scale is not None:
        if args.workers > 1:
            for circuit in circuits:
                failures.extend(
                    workers_speedup(
                        circuit,
                        args.scale,
                        args.workers,
                        args.executor,
                        args.engine,
                        args.out_dir,
                        args.repeat,
                    )
                )
            if failures:
                print(f"\nworkers speedup run FAILED ({len(failures)}):")
                for line in failures:
                    print(f"  {line}")
                return 1
            print("\nworkers speedup run passed")
            return 0
        for circuit in circuits:
            failures.extend(
                engine_speedup(
                    circuit, args.scale, args.out_dir, args.repeat
                )
            )
        if failures:
            print(f"\nengine speedup run FAILED ({len(failures)}):")
            for line in failures:
                print(f"  {line}")
            return 1
        print("\nengine speedup run passed")
        return 0

    if args.overhead_budget is not None:
        for circuit in circuits:
            failures.extend(
                overhead_budget(
                    circuit, args.engine, args.overhead_budget, args.repeat
                )
            )
        if failures:
            print(f"\noverhead budget run FAILED ({len(failures)}):")
            for line in failures:
                print(f"  {line}")
            return 1
        print("\noverhead budget run passed")
        return 0

    for circuit in circuits:
        flows = run_circuit(
            circuit, args.workers, args.engine, args.profile, args.executor
        )
        traces = traces_of(flows)
        if not args.no_audit:
            failures.extend(audit_flows(circuit, flows))
        if args.workers > 1:
            serial = traces_of(run_circuit(circuit, engine=args.engine))
            speedups = {}
            for label, parallel_trace in traces.items():
                s = serial[label].wall_seconds
                p = parallel_trace.wall_seconds
                ratio = s / p if p > 0 else 0.0
                speedups[label] = {
                    "serial_wall_seconds": round(s, 4),
                    "parallel_wall_seconds": round(p, 4),
                    "workers": args.workers,
                    "engine": args.engine,
                    "executor": args.executor,
                    "speedup": round(ratio, 3),
                }
                print(
                    f"{circuit}/{label}: serial {s:.3f}s, "
                    f"workers={args.workers} ({args.executor}) {p:.3f}s, "
                    f"speedup x{ratio:.2f}"
                )
            if args.out_dir:
                stem = (
                    f"SPEEDUP_PROC_{circuit}"
                    if args.executor == "process"
                    else f"SPEEDUP_{circuit}"
                )
                out = pathlib.Path(args.out_dir) / f"{stem}.json"
                out.parent.mkdir(parents=True, exist_ok=True)
                out.write_text(
                    json.dumps(speedups, indent=2, sort_keys=True) + "\n"
                )
                print(f"wrote {out}")
            traces = {
                label: strip_parallel_counters(trace)
                for label, trace in traces.items()
            }
        if args.profile != "off":
            traces = {
                label: strip_profile_counters(trace)
                for label, trace in traces.items()
            }
        if args.snapshot_dir:
            out = pathlib.Path(args.snapshot_dir) / f"BENCH_{circuit}.json"
            save_traces(out, traces)
            print(f"wrote {out}")
        if args.out_dir:
            out = pathlib.Path(args.out_dir) / f"BENCH_{circuit}.json"
            save_traces(out, traces)
            print(f"wrote {out}")
        if args.update:
            save_traces(baseline_path(circuit), traces)
            print(f"updated {baseline_path(circuit)}")
        else:
            failures.extend(check_circuit(circuit, traces, thresholds))

    if failures:
        print(f"\nregression gate FAILED ({len(failures)} finding(s)):")
        for line in failures:
            print(f"  {line}")
        return 1
    if not args.update:
        print("\nregression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
