"""Benchmark regression gate: diff fresh traces against baselines.

Routes a few small Table III circuits with both routers, freezes their
:class:`~repro.observe.RunTrace` documents, and diffs each against the
committed baseline in ``benchmarks/baselines/BENCH_<circuit>.json``
via :func:`repro.observe.diff_traces`.  Deterministic counters (maze
expansions, A* expansions, rip-up rounds, flow augmentations, ...)
must match the baseline **exactly** — any drift is a behavior change
somebody has to sign off on; wall time fails only past the tolerance
(default 25%) and above the noise floor.

Every fresh solution is additionally run through the independent
solution auditor (:func:`repro.analysis.audit_solution`): the AUD
rules re-derive all stitching constraints from the raw geometry and
cross-check the report's counters, so the gate no longer trusts the
evaluator it is diffing (``--no-audit`` opts out).  The audit is
invoked directly on the finished flow — not via
``RouterConfig(audit=True)`` — so the produced traces stay
byte-compatible with the committed (audit-free) baselines.

Exit status is non-zero on any regression, so CI can gate on it::

    PYTHONPATH=src python benchmarks/regression.py                 # full gate
    PYTHONPATH=src python benchmarks/regression.py --only S9234    # one circuit
    PYTHONPATH=src python benchmarks/regression.py --no-wall       # counters only
    PYTHONPATH=src python benchmarks/regression.py --update        # refresh baselines
    PYTHONPATH=src python benchmarks/regression.py --workers 4     # parallel gate
    PYTHONPATH=src python benchmarks/regression.py --snapshot-dir .  # refresh BENCH_*.json

``--workers N`` routes with the parallel net-batch engine and diffs
the result against the *same serial baselines*: the engine's
determinism contract means no routing counter may move (only its own
``parallel_*`` scheduling counters are stripped — they have no serial
counterpart).  It also runs serially and prints the per-circuit
wall-clock speedup (on GIL-bound pure-Python workloads expect ~1.0x;
see ``docs/parallelism.md``).  Combine with ``--no-wall`` when the
committed wall times come from other hardware.

Baseline refresh procedure (after an *intentional* behavior change):
run with ``--update``, eyeball ``git diff benchmarks/baselines/`` to
confirm only the counters you expected moved, and commit the new
baselines together with the change that moved them.  Cross-machine
wall times are not comparable, which is why CI runs ``--no-wall``;
the committed wall numbers only serve local before/after comparisons.

``--snapshot-dir DIR`` also writes the fresh ``BENCH_<circuit>.json``
documents to ``DIR`` (same label→trace schema as the baselines).
Pointed at the repo root, this refreshes the top-level perf-trajectory
snapshots; CI uploads them as artifacts on every gate run.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

from repro.analysis import audit_solution, render_audit
from repro.benchmarks_gen import mcnc_design
from repro.config import RouterConfig
from repro.core import BaselineRouter, FlowResult, StitchAwareRouter
from repro.observe import (
    DiffThresholds,
    RunTrace,
    diff_traces,
    render_diff,
)

BASELINE_DIR = pathlib.Path(__file__).parent / "baselines"

#: The gate's circuits: small enough that the whole gate runs in
#: seconds, spread over the easy/hard MCNC split (S13207 has almost no
#: stitch pins; S9234/S5378 are "hard" circuits with many).
CIRCUITS: Dict[str, float] = {
    "S9234": 0.02,
    "S5378": 0.02,
    "S13207": 0.02,
}

ROUTERS = {
    "baseline": BaselineRouter,
    "stitch-aware": StitchAwareRouter,
}


def baseline_path(circuit: str) -> pathlib.Path:
    """Committed baseline document for one circuit."""
    return BASELINE_DIR / f"BENCH_{circuit}.json"


def run_circuit(circuit: str, workers: int = 1) -> Dict[str, FlowResult]:
    """Route one gate circuit with every router; flows keyed by label.

    Returns the full :class:`~repro.core.FlowResult` (not just the
    trace) so the caller can both diff the traces and independently
    audit the solutions.
    """
    scale = CIRCUITS[circuit]
    config = RouterConfig(workers=workers)
    flows: Dict[str, FlowResult] = {}
    for label, router_cls in ROUTERS.items():
        design = mcnc_design(circuit, scale)
        flows[label] = router_cls(config=config).route(design)
    return flows


def traces_of(flows: Dict[str, FlowResult]) -> Dict[str, RunTrace]:
    """The ``label -> trace`` view of one circuit's flows."""
    traces: Dict[str, RunTrace] = {}
    for label, flow in flows.items():
        assert flow.trace is not None
        traces[label] = flow.trace
    return traces


def audit_flows(circuit: str, flows: Dict[str, FlowResult]) -> List[str]:
    """Independently audit every fresh solution; failure lines out.

    Calls :func:`repro.analysis.audit_solution` directly on the
    finished flows (rather than routing with ``audit=True``) so the
    traces being diffed stay identical to the committed baselines,
    which predate the audit span.
    """
    failures: List[str] = []
    for label, flow in flows.items():
        report = audit_solution(
            flow.detailed_result, flow.report, flow.global_result
        )
        if report.ok:
            print(
                f"{circuit}/{label}: audit clean "
                f"({report.nets_checked} nets)"
            )
        else:
            print(render_audit(report))
            failures.extend(
                f"{circuit}/{label}: audit {f.rule} {f.message}"
                for f in report.findings
            )
            failures.extend(
                f"{circuit}/{label}: audit drift {d.counter}: "
                f"reported {d.reported} != recomputed {d.recomputed}"
                for d in report.drift
            )
    return failures


def strip_parallel_counters(trace: RunTrace) -> RunTrace:
    """A copy of ``trace`` without the ``parallel_*`` bookkeeping.

    The parallel engine's determinism contract covers the *routing*
    counters (they match the serial run exactly — that is what the
    differential suite proves); its own scheduling counters (batches,
    conflicts, pooled tasks) have no serial counterpart, so a parallel
    gate run strips them before diffing against the serial baseline.
    """
    doc = trace.to_dict()

    def scrub(span: dict) -> None:
        counters = span.get("counters")
        if counters:
            for key in [k for k in counters if k.startswith("parallel_")]:
                del counters[key]
            if not counters:
                del span["counters"]
        for child in span.get("children", ()):
            scrub(child)

    for span in doc["spans"]:
        scrub(span)
    doc["counters"] = {
        k: v
        for k, v in doc["counters"].items()
        if not k.startswith("parallel_")
    }
    return RunTrace.from_dict(doc)


def save_traces(path: pathlib.Path, traces: Dict[str, RunTrace]) -> None:
    """Write a ``label -> trace`` document (BENCH_*.json schema)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {label: trace.to_dict() for label, trace in traces.items()}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_traces(path: pathlib.Path) -> Dict[str, RunTrace]:
    """Read a ``label -> trace`` document back."""
    data = json.loads(path.read_text())
    return {label: RunTrace.from_dict(doc) for label, doc in data.items()}


def check_circuit(
    circuit: str,
    traces: Dict[str, RunTrace],
    thresholds: DiffThresholds,
) -> List[str]:
    """Diff fresh traces against the committed baseline; failures out."""
    path = baseline_path(circuit)
    if not path.exists():
        return [f"{circuit}: missing baseline {path} (run with --update)"]
    baselines = load_traces(path)
    failures: List[str] = []
    for label, fresh in traces.items():
        if label not in baselines:
            failures.append(f"{circuit}/{label}: not in baseline document")
            continue
        diff = diff_traces(baselines[label], fresh, thresholds)
        if diff.ok:
            print(f"{circuit}/{label}: OK")
        else:
            print(render_diff(diff))
            failures.extend(
                f"{circuit}/{label}: {line}" for line in diff.regressions()
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark trace regression gate"
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="CIRCUIT",
        help="restrict to one circuit (repeatable)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed baselines instead of checking",
    )
    parser.add_argument(
        "--no-wall",
        action="store_true",
        help="compare deterministic counters only (use on CI: committed "
        "wall times come from a different machine)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=25.0,
        metavar="PCT",
        help="wall-time regression threshold (default 25%%)",
    )
    parser.add_argument(
        "--min-wall",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="noise floor below which stage timings are not compared",
    )
    parser.add_argument(
        "--out-dir",
        metavar="DIR",
        help="also write the freshly produced traces there (CI artifacts)",
    )
    parser.add_argument(
        "--snapshot-dir",
        metavar="DIR",
        help="refresh the top-level BENCH_<circuit>.json perf snapshots "
        "there (point at the repo root to update the committed "
        "trajectory; CI uploads them as artifacts)",
    )
    parser.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the independent solution audit of the fresh runs",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="route with N worker threads and verify the parallel runs "
        "against the serial baselines (parallel_* scheduling counters "
        "are stripped; everything else must match exactly).  Also runs "
        "serially and reports the wall-clock speedup per circuit.",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.update and args.workers > 1:
        parser.error("baselines are serial; refusing --update with --workers")

    circuits = args.only or list(CIRCUITS)
    unknown = [c for c in circuits if c not in CIRCUITS]
    if unknown:
        parser.error(
            f"unknown gate circuit(s) {unknown}; choose from {list(CIRCUITS)}"
        )
    thresholds = DiffThresholds(
        wall_pct=args.wall_tolerance,
        min_wall_seconds=args.min_wall,
        include_wall=not args.no_wall,
    )

    failures: List[str] = []
    for circuit in circuits:
        flows = run_circuit(circuit, args.workers)
        traces = traces_of(flows)
        if not args.no_audit:
            failures.extend(audit_flows(circuit, flows))
        if args.workers > 1:
            serial = traces_of(run_circuit(circuit))
            speedups = {}
            for label, parallel_trace in traces.items():
                s = serial[label].wall_seconds
                p = parallel_trace.wall_seconds
                ratio = s / p if p > 0 else 0.0
                speedups[label] = {
                    "serial_wall_seconds": round(s, 4),
                    "parallel_wall_seconds": round(p, 4),
                    "workers": args.workers,
                    "speedup": round(ratio, 3),
                }
                print(
                    f"{circuit}/{label}: serial {s:.3f}s, "
                    f"workers={args.workers} {p:.3f}s, speedup x{ratio:.2f}"
                )
            if args.out_dir:
                out = pathlib.Path(args.out_dir) / f"SPEEDUP_{circuit}.json"
                out.parent.mkdir(parents=True, exist_ok=True)
                out.write_text(
                    json.dumps(speedups, indent=2, sort_keys=True) + "\n"
                )
                print(f"wrote {out}")
            traces = {
                label: strip_parallel_counters(trace)
                for label, trace in traces.items()
            }
        if args.snapshot_dir:
            out = pathlib.Path(args.snapshot_dir) / f"BENCH_{circuit}.json"
            save_traces(out, traces)
            print(f"wrote {out}")
        if args.out_dir:
            out = pathlib.Path(args.out_dir) / f"BENCH_{circuit}.json"
            save_traces(out, traces)
            print(f"wrote {out}")
        if args.update:
            save_traces(baseline_path(circuit), traces)
            print(f"updated {baseline_path(circuit)}")
        else:
            failures.extend(check_circuit(circuit, traces, thresholds))

    if failures:
        print(f"\nregression gate FAILED ({len(failures)} finding(s)):")
        for line in failures:
            print(f"  {line}")
        return 1
    if not args.update:
        print("\nregression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
