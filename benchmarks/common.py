"""Shared helpers for the paper-reproduction benchmarks.

Every ``bench_*`` file regenerates one table or figure of the paper's
evaluation section, prints it in the paper's layout, and writes it to
``benchmarks/results/``.  Instance sizes follow ``REPRO_SCALE`` /
``REPRO_FULL`` (see :func:`repro.config.benchmark_scale`); the default
keeps a full benchmark run in the tens of minutes on a laptop.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List

from repro.benchmarks_gen import (
    FARADAY_NAMES,
    MCNC_NAMES,
    faraday_design,
    mcnc_design,
)
from repro.config import benchmark_scale
from repro.layout import Design
from repro.observe import RunTrace

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Faraday circuits are 2-3x larger than the biggest MCNC circuit and
#: use 6 layers; they run at a smaller fraction so one benchmark pass
#: stays laptop-sized.  Congestion is preserved under scaling.
FARADAY_FACTOR = 0.4


def mcnc_scale() -> float:
    """Instance scale for MCNC circuits."""
    return benchmark_scale(default=0.05)


def faraday_scale() -> float:
    """Instance scale for Faraday circuits."""
    return min(1.0, benchmark_scale(default=0.05) * FARADAY_FACTOR)


def full_suite() -> List[Design]:
    """All 14 circuits of Tables I+II at benchmark scale."""
    designs = [mcnc_design(name, mcnc_scale()) for name in MCNC_NAMES]
    designs += [
        faraday_design(name, faraday_scale()) for name in FARADAY_NAMES
    ]
    return designs


def save_result(name: str, text: str) -> pathlib.Path:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
    print(f"[saved to {path}]")
    return path


def save_bench_json(name: str, traces: Dict[str, RunTrace]) -> pathlib.Path:
    """Persist per-run traces as ``BENCH_<name>.json``.

    One document per benchmark, keyed ``<circuit>/<router-label>``, each
    value a full :class:`RunTrace` dict — the per-stage span/counter
    data perf PRs regress against.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    payload = {label: trace.to_dict() for label, trace in traces.items()}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[traces saved to {path}]")
    return path
