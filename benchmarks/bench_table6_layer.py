"""Table VI — layer assignment: max spanning tree vs the flow heuristic.

Average k-coloring cost (total monochromatic conflict edge weight) over
the 50 random instances, for 2-5 available layers.  The paper's shape:
ours wins everywhere and the improvement grows with k (13.9% at k=2 to
59.4% at k=5).
"""

from repro.algorithms import coloring_cost
from repro.assign import (
    build_conflict_graph,
    flow_kcoloring,
    instance_suite,
    mst_kcoloring,
)
from repro.reporting import format_table

from common import save_result


def run():
    suite = instance_suite()
    graphs = []
    for panel in suite:
        vertices, edges = build_conflict_graph(panel)
        spans = {s.index: s.span for s in panel.segments}
        graphs.append((vertices, spans, edges))
    rows = []
    for k in (2, 3, 4, 5):
        mst_total = flow_total = 0.0
        for vertices, spans, edges in graphs:
            mst_total += coloring_cost(edges, mst_kcoloring(vertices, edges, k))
            flow_total += coloring_cost(
                edges, flow_kcoloring(vertices, spans, edges, k)
            )
        rows.append(
            {
                "layers": k,
                "max_spanning_tree": mst_total / len(suite),
                "ours": flow_total / len(suite),
                "improvement_pct": 100 * (1 - flow_total / mst_total),
            }
        )
    return rows


def test_table6_layer_assignment(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        title=(
            "Table VI - layer assignment cost, MST [4] vs ours\n"
            "(paper improvements: 13.9%, 30.3%, 44.6%, 59.4%)"
        ),
    )
    save_result("table6_layer", table)

    improvements = [r["improvement_pct"] for r in rows]
    assert all(i > 0 for i in improvements), "ours must win at every k"
    assert improvements == sorted(improvements), (
        "improvement must grow with the number of layers"
    )
