"""Table V — characteristics of the 50 layer-assignment instances."""

from repro.assign import instance_suite, suite_stats
from repro.reporting import format_table

from common import save_result


def run():
    return suite_stats(instance_suite())


def test_table5_instance_characteristics(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        [
            {
                "instances": stats.count,
                "seg_density_max": stats.max_segment_density,
                "seg_density_avg": stats.avg_segment_density,
                "end_density_max": stats.max_line_end_density,
                "end_density_avg": stats.avg_line_end_density,
            }
        ],
        title=(
            "Table V - layer assignment instances\n"
            "(paper: seg density max 11.68 avg 5.72; "
            "line-end density max 6.06 avg 2.00)"
        ),
    )
    save_result("table5_instances", table)
    assert stats.count == 50
    assert 8 <= stats.max_segment_density <= 14
    assert 4 <= stats.max_line_end_density <= 8
