"""Table II — Faraday benchmark circuit characteristics."""

from repro.benchmarks_gen import FARADAY_NAMES, FARADAY_SPECS, faraday_design
from repro.reporting import format_table

from common import faraday_scale, save_result


def build_rows(scale):
    rows = []
    for name in FARADAY_NAMES:
        design = faraday_design(name, scale)
        spec = FARADAY_SPECS[name]
        rows.append(
            {
                "circuit": name,
                "size": f"{design.width}x{design.height}",
                "layers": design.technology.num_layers,
                "nets": design.num_nets,
                "pins": design.num_pins,
                "full_nets": spec.nets,
                "full_pins": spec.pins,
            }
        )
    return rows


def test_table2_faraday_characteristics(benchmark):
    scale = faraday_scale()
    rows = benchmark.pedantic(build_rows, args=(scale,), rounds=1, iterations=1)
    table = format_table(
        rows, title=f"Table II - Faraday benchmark circuits (scale {scale})"
    )
    save_result("table2_faraday", table)
    assert len(rows) == 5
    for row in rows:
        assert row["layers"] == 6
