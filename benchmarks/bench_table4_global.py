"""Table IV — stitch-aware global routing: line-end consideration.

On the six "hard" MCNC circuits (congestion-stressed variants, see
``mcnc_stress_design``): total and maximum vertex overflow, wirelength
and CPU with and without the line-end (vertex) term of Eqs. (2)-(3).
The paper's shape: overflow drops to (near) zero at ~1.5% wirelength.
"""

from repro.benchmarks_gen import MCNC_HARD_NAMES, mcnc_stress_design
from repro.globalroute import GlobalRouter
from repro.reporting import format_table

from common import mcnc_scale, save_result

COLUMNS = [
    "circuit",
    "wo_tvof", "wo_mvof", "wo_wl", "wo_cpu",
    "w_tvof", "w_mvof", "w_wl", "w_cpu",
]


def run(scale):
    rows = []
    for name in MCNC_HARD_NAMES:
        design = mcnc_stress_design(name, scale)
        without = GlobalRouter(stitch_aware=False).route(design)
        with_ends = GlobalRouter(stitch_aware=True).route(design)
        rows.append(
            {
                "circuit": name,
                "wo_tvof": without.total_vertex_overflow,
                "wo_mvof": without.max_vertex_overflow,
                "wo_wl": without.wirelength,
                "wo_cpu": without.cpu_seconds,
                "w_tvof": with_ends.total_vertex_overflow,
                "w_mvof": with_ends.max_vertex_overflow,
                "w_wl": with_ends.wirelength,
                "w_cpu": with_ends.cpu_seconds,
            }
        )
    return rows


def test_table4_global_routing_line_ends(benchmark):
    scale = mcnc_scale()
    rows = benchmark.pedantic(run, args=(scale,), rounds=1, iterations=1)
    wo_tvof = sum(r["wo_tvof"] for r in rows)
    w_tvof = sum(r["w_tvof"] for r in rows)
    wo_wl = sum(r["wo_wl"] for r in rows)
    w_wl = sum(r["w_wl"] for r in rows)
    comp = {
        "circuit": "Comp.",
        "wo_tvof": 1.0,
        "wo_wl": 1.0,
        "w_tvof": (w_tvof / wo_tvof) if wo_tvof else None,
        "w_wl": w_wl / wo_wl,
    }
    table = format_table(
        rows + [comp],
        columns=COLUMNS,
        title=(
            "Table IV - global routing without vs with line-end "
            "consideration\n(paper Comp. row: TVOF 0.001, MVOF 0.028, "
            "WL 1.015)"
        ),
        decimals=3,
    )
    save_result("table4_global", table)

    assert wo_tvof > 0, "stress variants must show vertex overflow"
    assert w_tvof < 0.35 * wo_tvof
    assert w_wl < 1.3 * wo_wl
