"""Table VIII — detailed routing with vs without stitch consideration.

Both runs use the graph-based track assignment results (as the paper
does); only the detailed routing stage differs: the Eq. (10) beta/gamma
costs, the stitch-aware net ordering, and the short-polygon repair are
switched off in the "without" column.  The paper's shape: the
stitch-aware detailed router removes ~80% of the remaining short
polygons at <=0.2% routability cost.
"""

from repro.config import RouterConfig
from repro.api import StitchAwareRouter
from repro.reporting import format_table

from common import full_suite, save_result

COLUMNS = [
    "circuit",
    "wo_rout", "wo_vv", "wo_sp", "wo_cpu",
    "w_rout", "w_vv", "w_sp", "w_cpu",
]


def run():
    rows = []
    for design in full_suite():
        without = StitchAwareRouter(
            config=RouterConfig(stitch_aware_detail=False)
        ).route(design)
        with_stitch = StitchAwareRouter(
            config=RouterConfig(stitch_aware_detail=True)
        ).route(design)
        rows.append(
            {
                "circuit": design.name,
                "wo_rout": 100 * without.report.routability,
                "wo_vv": without.report.via_violations,
                "wo_sp": without.report.short_polygons,
                "wo_cpu": without.report.cpu_seconds,
                "w_rout": 100 * with_stitch.report.routability,
                "w_vv": with_stitch.report.via_violations,
                "w_sp": with_stitch.report.short_polygons,
                "w_cpu": with_stitch.report.cpu_seconds,
            }
        )
    return rows


def test_table8_detailed_routing(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    wo_sp = sum(r["wo_sp"] for r in rows)
    w_sp = sum(r["w_sp"] for r in rows)
    wo_rout = sum(r["wo_rout"] for r in rows)
    w_rout = sum(r["w_rout"] for r in rows)
    comp = {
        "circuit": "Comp.",
        "wo_rout": 1.0,
        "wo_sp": 1.0,
        "w_rout": w_rout / wo_rout,
        "w_sp": (w_sp / wo_sp) if wo_sp else None,
    }
    table = format_table(
        rows + [comp],
        columns=COLUMNS,
        title=(
            "Table VIII - detailed routing without vs with stitch "
            "consideration\n(paper Comp. row: Rout 0.998, #SP 0.200)"
        ),
    )
    save_result("table8_detailed", table)

    assert w_sp < 0.6 * wo_sp, "stitch-aware detail must cut SP strongly"
    assert w_rout > 0.97 * wo_rout
