"""Figure 16 — local view: short polygons avoided by stitch awareness.

Routes one circuit with both routers, locates a short polygon the
baseline produced, and writes windowed before/after SVG close-ups plus
an ASCII rendering of the repaired window.  The stitch-aware view must
contain no short polygon inside the same window.
"""

from repro.benchmarks_gen import mcnc_design
from repro.api import BaselineRouter, StitchAwareRouter
from repro.detailed.wiring import short_polygon_sites, trim_dangling
from repro.geometry import Rect
from repro.viz import render_layer_ascii, render_routing_svg

from common import RESULTS_DIR, mcnc_scale, save_result


def sp_locations(result, design):
    assert design.stitches is not None
    spots = []
    for record in result.nets.values():
        edges = trim_dangling(record.edges, record.pin_nodes)
        for crossing, _end in short_polygon_sites(
            edges, record.pin_nodes, design.stitches
        ):
            spots.append(crossing)
    return spots


def run(scale):
    design = mcnc_design("S13207", scale)
    baseline = BaselineRouter().route(design)
    aware = StitchAwareRouter().route(design)
    return design, baseline, aware


def test_fig16_dogleg_closeup(benchmark):
    scale = mcnc_scale()
    design, baseline, aware = benchmark.pedantic(
        run, args=(scale,), rounds=1, iterations=1
    )
    before_spots = sp_locations(baseline.detailed_result, design)
    after_spots = set(sp_locations(aware.detailed_result, design))
    assert before_spots, "baseline must produce short polygons"

    # Pick a baseline short polygon whose window is clean afterwards.
    margin = 10
    window = None
    for line_x, y, _layer in before_spots:
        candidate = Rect(
            max(0, line_x - margin),
            max(0, y - margin),
            min(design.width - 1, line_x + margin),
            min(design.height - 1, y + margin),
        )
        if not any(
            candidate.contains_rect(Rect(x, yy, x, yy))
            for x, yy, _l in after_spots
        ):
            window = candidate
            break
    assert window is not None, "some window must be fully repaired"

    RESULTS_DIR.mkdir(exist_ok=True)
    for tag, flow in (("before", baseline), ("after", aware)):
        svg = render_routing_svg(flow.detailed_result, window=window)
        (RESULTS_DIR / f"fig16_{tag}.svg").write_text(svg)

    ascii_view = render_layer_ascii(
        aware.detailed_result, layer=1, window=window
    )
    summary = (
        f"Fig. 16 - short polygon avoidance (window {window})\n"
        f"baseline short polygons in design: "
        f"{baseline.report.short_polygons}\n"
        f"stitch-aware short polygons in design: "
        f"{aware.report.short_polygons}\n"
        f"svgs: fig16_before.svg / fig16_after.svg\n\n"
        f"stitch-aware layer 1 close-up:\n{ascii_view}"
    )
    save_result("fig16_doglegs", summary)
    assert aware.report.short_polygons < baseline.report.short_polygons
