"""Figure 15 — full-chip routing plot of S38417.

Routes the synthetic S38417 with the stitch-aware framework and writes
the SVG corresponding to the paper's Fig. 15 (all layers, stitching
lines dashed, pins and vias drawn).
"""

import pathlib

from repro.benchmarks_gen import mcnc_design
from repro.api import StitchAwareRouter
from repro.viz import render_routing_svg

from common import RESULTS_DIR, mcnc_scale, save_result


def run(scale):
    design = mcnc_design("S38417", scale)
    flow = StitchAwareRouter().route(design)
    svg = render_routing_svg(flow.detailed_result)
    return design, flow, svg


def test_fig15_routing_plot(benchmark):
    scale = mcnc_scale()
    design, flow, svg = benchmark.pedantic(
        run, args=(scale,), rounds=1, iterations=1
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "fig15_s38417.svg"
    out.write_text(svg)
    summary = (
        f"Fig. 15 - S38417 routing result (scale {scale})\n"
        f"nets routed: {flow.report.routed_nets}/{flow.report.total_nets} "
        f"({100 * flow.report.routability:.2f}%)\n"
        f"short polygons: {flow.report.short_polygons}\n"
        f"svg: {out}"
    )
    save_result("fig15_plot", summary)

    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert flow.report.routability > 0.95
    # The plot must actually show the layout: wires on several layers
    # and the stitching lines.
    assert "stroke-dasharray" in svg
    assert svg.count("<line") > design.num_nets
